"""Terminal-state validation: sequential oracle + protocol invariants.

A terminal state is valid when it could have been produced by *some*
sequential execution of the operations the clients issued (QRPC is
at-most-once, not exactly-ordered, so any interleaving of the
per-client programs is legal) and the end-to-end chaos invariants hold
(acked updates durable exactly once, logs drained, caches coherent).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable, Optional

from repro.chaos.invariants import (
    check_acked_updates_durable,
    check_cache_coherent,
    check_logs_drained,
    check_no_orphan_tentative,
)


def check_sequential_append(
    final_items: list,
    per_client_issued: dict[str, list[str]],
    acked: Iterable[str],
    key: str = "id",
    require_order: bool = False,
) -> list[str]:
    """``final_items`` must be a legal merge of the clients' appends.

    Legal means: every element was issued by some client, no element
    appears twice (at-most-once), and every *acknowledged* element is
    present (durability).  ``require_order=True`` additionally demands
    each client's surviving elements appear in that client's issue
    order — only meaningful for strictly serialized pipelines.  QRPC
    itself does not promise it: request ids are order-independent (see
    docs/ROBUSTNESS.md) and a timed-out request re-enters the queue
    behind younger ones, so under drop faults a later append can
    legally commit first.
    """
    violations: list[str] = []
    tokens = [
        item.get(key) if isinstance(item, dict) else item for item in final_items
    ]
    issued_by: dict[str, str] = {}
    for client, issued in per_client_issued.items():
        for token in issued:
            issued_by[token] = client
    seen: dict[str, int] = {}
    for token in tokens:
        seen[token] = seen.get(token, 0) + 1
        if token not in issued_by:
            violations.append(f"server holds {token!r} that no client issued")
    for token, count in seen.items():
        if count > 1:
            violations.append(f"{token!r} applied {count} times (at-most-once broken)")
    for token in acked:
        if token not in seen:
            violations.append(f"acked update {token!r} lost at server")
    if not require_order:
        return violations
    for client, issued in per_client_issued.items():
        survivors = [t for t in tokens if issued_by.get(t) == client]
        in_order = [t for t in issued if t in seen]
        # Compare against first-occurrence order so a duplicate (already
        # reported above) does not cascade into a bogus ordering report.
        first_occurrence = list(dict.fromkeys(survivors))
        if first_occurrence != in_order:
            violations.append(
                f"{client}: server order {first_occurrence} breaks issue order {in_order}"
            )
    return violations


def standard_checks(
    server: Any,
    accesses: list[Any],
    conflicted_hosts: frozenset[str] = frozenset(),
) -> list[str]:
    """The chaos invariants every scenario asserts at quiescence."""
    violations: list[str] = []
    violations += check_logs_drained(accesses)
    violations += check_cache_coherent(server, accesses)
    violations += check_no_orphan_tentative(accesses, conflicted=conflicted_hosts)
    return violations


def durable_exactly_once(
    server: Any, urn: str, acked: Iterable[str], field: str, key: str = "id"
) -> list[str]:
    return check_acked_updates_durable(server, urn, acked, field=field, key=key)


# -- terminal-state hashing ---------------------------------------------------


def terminal_state(server: Any, accesses: list[Any], harness: Any) -> dict:
    """Protocol-visible terminal state, canonically structured.

    Deliberately excludes transport/scheduler counters, retry counts and
    timings: two runs that converge to the same stores, caches, logs and
    conflict sets are the *same* outcome for the oracle, no matter how
    many retransmissions it took to get there.  That is what makes
    counting unique terminal states meaningful — and what makes
    commutativity pruning checkable (pruned and unpruned explorations
    must produce identical terminal-state sets).
    """
    store_view = {}
    for urn in sorted(server.store.keys()):
        wire = server.store.get_value(urn) or {}
        store_view[urn] = {
            "version": server.store.version(urn),
            "data": wire.get("data"),
        }
    clients = []
    for access in accesses:
        cache_view = {}
        for entry in access.cache:
            cache_view[str(entry.rdo.urn)] = {
                "version": entry.rdo.version,
                "tentative": entry.tentative,
                "data": entry.rdo.data,
            }
        clients.append(
            {
                "host": access.host.name,
                "cache": cache_view,
                "pending": sorted(r.request_id for r in access.log.pending()),
            }
        )
    return {
        "server": store_view,
        "clients": clients,
        "conflicts": sorted(harness.conflicts),
    }


def state_hash(state: dict) -> str:
    canonical = json.dumps(state, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def hash_of(server: Any, accesses: list[Any], harness: Any) -> str:
    return state_hash(terminal_state(server, accesses, harness))


def diff_summary(state: dict, limit: int = 6) -> Optional[str]:
    """Short human-readable digest of a terminal state (CLI output)."""
    parts = [
        f"{urn}=v{view['version']}" for urn, view in state["server"].items()
    ]
    return ", ".join(parts[:limit]) if parts else None
