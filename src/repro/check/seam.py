"""Decision-point instrumentation: turning nondeterminism into choices.

The simulated network and the crash machinery have a handful of places
where more than one outcome is legal.  This module exposes each as an
enumerable decision point through :meth:`repro.sim.Simulator.decide`:

* :class:`CheckInjector` sits in the ``Link.fault_injector`` seam and
  offers, per frame, **deliver / drop / duplicate(delayed) / delay**
  (plus **flap the link mid-transfer** when the scenario enables it);
* :func:`arm_crash_points` wraps a client's stable-log flush so every
  durable record boundary offers **continue / crash-and-recover**;
* :func:`count_dispatch_while_down` wraps a client transport so the
  harness can assert that the scheduler never hands a frame to a
  carrier whose link is known-down (the stale-route-cache invariant).

Commutativity pruning lives here too: frames whose touched objects are
either uncontended (single client) or never written (read/read) cannot
change the terminal state by being reordered or replayed — retransmission
and at-most-once absorb any fault on them — so under pruning they are
forced to the default choice without consuming a decision point.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.net.link import ConnectivityPolicy
from repro.net.simnet import Delivery, Link
from repro.net.transport import Transport


class SwitchablePolicy(ConnectivityPolicy):
    """An always-up link the checker can force down for a window.

    ``force_down(now, duration)`` opens one down-window; the caller is
    responsible for firing ``link._handle_transition()`` so in-flight
    transfers fail at the drop instant (mirroring what a scheduled
    policy transition would do).
    """

    def __init__(self) -> None:
        self._down_from = math.inf
        self._down_to = -math.inf

    def is_up(self, t: float) -> bool:
        return not (self._down_from <= t < self._down_to)

    def next_transition(self, t: float) -> Optional[float]:
        if t < self._down_from:
            return None if self._down_from == math.inf else self._down_from
        if t < self._down_to:
            return self._down_to
        return None

    def force_down(self, now: float, duration: float) -> None:
        self._down_from = now
        self._down_to = now + duration


class CheckHarness:
    """Per-run bookkeeping shared by the seams and the oracle."""

    def __init__(
        self,
        sim: Any,
        contended: frozenset[str],
        written: frozenset[str],
        pruning: bool = True,
        flap_choices: bool = False,
        crash_budget: int = 0,
        dup_delay_s: float = 3.0,
        delay_s: float = 0.25,
        flap_heal_s: float = 0.5,
    ) -> None:
        self.sim = sim
        #: URNs touched by two or more clients (ordering can matter).
        self.contended = contended
        #: URNs at least one client writes (read/read never branches).
        self.written = written
        self.pruning = pruning
        self.flap_choices = flap_choices
        self.crash_budget = crash_budget
        self.dup_delay_s = dup_delay_s
        self.delay_s = delay_s
        self.flap_heal_s = flap_heal_s
        #: Branch points suppressed by commutativity pruning (each one
        #: would have multiplied the run set by its alternative count).
        self.pruned_points = 0
        self.decision_points = 0
        self.dispatch_while_down = 0
        self.crashes: list[tuple[str, list[str]]] = []
        self.conflicts: list[tuple[str, str]] = []
        self._crash_pending = False

    def branchable(self, urns: set[str]) -> bool:
        """Can reordering/replaying a frame touching ``urns`` matter?"""
        return bool(urns & self.contended) and bool(urns & self.written)


#: Frame-level alternatives, in decide() order.  Index 0 (deliver
#: unchanged) is the fault-free default every unexplored point takes.
FRAME_ALTERNATIVES = ("deliver", "drop", "dup", "delay", "flap")


class CheckInjector:
    """``Link.fault_injector`` that enumerates per-frame outcomes.

    Installed on every link of a checker testbed.  For each planned
    delivery it decodes the transport envelope (request/reply/datagram),
    works out which URNs the exchange touches (replies inherit their
    request's URNs via the RPC call id), and — unless pruning proves the
    frame unbranchable — asks the simulator to pick one of
    :data:`FRAME_ALTERNATIVES`.
    """

    def __init__(self, harness: CheckHarness, link: Link) -> None:
        self.harness = harness
        self.link = link
        self._call_urns: dict[str, set[str]] = {}

    # -- envelope inspection ------------------------------------------------

    def _body_urns(self, service: str, body: Any) -> set[str]:
        urns: set[str] = set()
        if isinstance(body, dict):
            urn = body.get("urn")
            if isinstance(urn, str):
                urns.add(urn)
            if service == "rover.batch":
                for member in body.get("requests", []):
                    if isinstance(member, dict):
                        urns |= self._body_urns(
                            member.get("service", ""), member.get("body")
                        )
        return urns

    def _describe(self, payload: bytes) -> dict:
        try:
            envelope = Transport._decode_payload(payload)
        except Exception:
            return {"kind": "opaque", "urns": set()}
        if not isinstance(envelope, dict):
            return {"kind": "opaque", "urns": set()}
        kind = envelope.get("kind")
        if kind == "request":
            service = envelope.get("service", "")
            urns = self._body_urns(service, envelope.get("body"))
            call_id = envelope.get("id")
            if isinstance(call_id, str):
                # Remember the exchange so the reply frame (which has
                # no body URN of its own) inherits the same footprint.
                self._call_urns[call_id] = set(urns)
            body = envelope.get("body")
            request_id = body.get("request_id") if isinstance(body, dict) else None
            return {
                "kind": "request",
                "service": service,
                "urns": urns,
                "request_id": request_id,
            }
        if kind == "reply":
            call_id = envelope.get("id")
            urns = self._call_urns.get(call_id, set())
            return {"kind": "reply", "urns": set(urns)}
        urn = envelope.get("urn")
        return {
            "kind": str(kind),
            "urns": {urn} if isinstance(urn, str) else set(),
        }

    # -- the seam -----------------------------------------------------------

    def plan(self, link: Link, delivery: Delivery) -> list[Delivery]:
        if delivery.fail_reason is not None:
            return [delivery]  # the link's own loss model already lost it
        meta = self._describe(delivery.payload)
        if self.harness.pruning and not self.harness.branchable(meta["urns"]):
            self.harness.pruned_points += 1
            return [delivery]
        n = len(FRAME_ALTERNATIVES) if self._can_flap() else 4
        decide_meta = {
            "point": "frame",
            "link": link.name,
            "kind": meta.get("kind"),
            "service": meta.get("service"),
            "request_id": meta.get("request_id"),
            "urns": sorted(meta["urns"]),
        }
        self.harness.decision_points += 1
        choice = self.harness.sim.decide(n, decide_meta)
        action = FRAME_ALTERNATIVES[choice]
        if action == "drop":
            return [Delivery(delivery.time, delivery.payload, "checker drop")]
        if action == "dup":
            # The replayed copy lands well after the exchange settles —
            # the interesting window for at-most-once machinery.
            return [
                delivery,
                Delivery(
                    delivery.time + self.harness.dup_delay_s, delivery.payload
                ),
            ]
        if action == "delay":
            return [
                Delivery(delivery.time + self.harness.delay_s, delivery.payload)
            ]
        if action == "flap":
            # Let the frame start, then yank the link mid-transfer:
            # in-flight transfers fail exactly as a policy drop would.
            now = self.harness.sim.now
            midpoint = now + (delivery.time - now) * 0.5
            self.harness.sim.schedule_at(midpoint, self._flap)
            return [delivery]
        return [delivery]

    def _can_flap(self) -> bool:
        return self.harness.flap_choices and isinstance(
            self.link.policy, SwitchablePolicy
        )

    def _flap(self) -> None:
        policy = self.link.policy
        if not isinstance(policy, SwitchablePolicy) or not self.link.is_up:
            return
        policy.force_down(self.harness.sim.now, self.harness.flap_heal_s)
        self.link._handle_transition()


def install_injectors(harness: CheckHarness, links: list[Link]) -> None:
    for link in links:
        link.fault_injector = CheckInjector(harness, link)


def arm_crash_points(harness: CheckHarness, stack: Any) -> None:
    """Offer a crash choice at every stable-log record boundary.

    Wraps ``stack.access.log.stable.flush`` — the instant a batch of
    records becomes durable, which is exactly the boundary at which a
    crash is interesting (earlier, the records never existed; later,
    the state is the same until the next flush).  A taken crash runs
    the full :func:`repro.chaos.recovery.crash_and_recover_client`
    machinery deferred by one event, then re-arms on the rebuilt stack.
    """
    stable = stack.access.log.stable
    original_flush = stable.flush

    def flush_and_offer_crash() -> float:
        duration = original_flush()
        if harness.crash_budget > 0 and not harness._crash_pending:
            harness.decision_points += 1
            choice = harness.sim.decide(
                2, {"point": "crash", "host": stack.host.name}
            )
            if choice == 1:
                harness.crash_budget -= 1
                harness._crash_pending = True
                harness.sim.schedule(0.0, crash_now)
        return duration

    def crash_now() -> None:
        harness._crash_pending = False
        replayed = stack.crash_and_recover()
        harness.crashes.append((stack.host.name, list(replayed)))
        arm_crash_points(harness, stack)  # the rebuilt manager has a new log

    stable.flush = flush_and_offer_crash


def count_dispatch_while_down(harness: CheckHarness, transport: Transport) -> None:
    """Count RPC dispatch attempts made with no usable link.

    The network scheduler must never pick a route whose link it could
    know is down — a stale memoized route burns a retry attempt and a
    backoff for nothing.  Wrapping :meth:`Transport.call` observes the
    exact moment of dispatch, before the transport raises ``LinkDown``.
    """
    original_call = transport.call

    def call(dst, service, request, on_reply, on_error, timeout=60.0, link=None):
        if transport.best_link(dst) is None:
            harness.dispatch_while_down += 1
        return original_call(
            dst,
            service,
            request,
            on_reply=on_reply,
            on_error=on_error,
            timeout=timeout,
            link=link,
        )

    transport.call = call
