"""Static verification of RDO code at publish/registration time.

The paper gives RDOs "three somewhat conflicting goals: (1) safe
execution, (2) portability, and (3) efficiency".  The runtime sandbox
(:class:`repro.core.interpreter.SafeInterpreter`) enforces (1) on the
*receiving* host, mid-invocation — which means a bad RDO is rejected
only after it shipped over a slow link.  Safe-Tcl and Java, the
code-shipping substrates the paper cites, both moved safety checks to
load/verify time for exactly this reason.

This module is that verify-time pass.  It shares its rule tables with
the runtime interpreter (:mod:`repro.lint.rules`), so anything it
accepts the interpreter also accepts, and it checks several properties
the runtime *cannot* see:

* **whitelist conformance** — the same safe subset the interpreter
  enforces, but collecting *all* violations with positions instead of
  failing on the first;
* **mutation purity** — a method whose body mutates the state
  parameter must be declared ``mutates=True`` in the interface, else
  the access manager never marks the cached copy tentative and never
  queues an export, silently breaking coherence;
* **marshal-ability** — literal return values must be encodable by
  :mod:`repro.net.message`;
* **name resolution** — every free name must resolve to a safe
  builtin, a function defined in the same RDO, or a declared host
  helper;
* **bounded execution** — a ``while`` over a constant-true condition
  with no exit cannot be bounded by the step budget heuristic.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Protocol

from repro.lint.diagnostics import Diagnostic, Severity, sort_diagnostics
from repro.lint.rules import (
    ALLOWED_NODES,
    FORBIDDEN_ATTRIBUTES,
    MARSHALLABLE_TYPES,
    MUTATING_METHODS,
    SAFE_BUILTINS,
    UNMARSHALLABLE_CONSTRUCTORS,
    rule_hint,
)


class InterfaceLike(Protocol):
    """What the verifier needs from an ``RDOInterface`` (duck-typed so
    this module never imports :mod:`repro.core`)."""

    def method_names(self) -> list[str]: ...

    def mutates(self, name: str) -> bool: ...


def _diag(
    rule: str,
    node: Optional[ast.AST],
    path: str,
    message: str,
    severity: Severity = Severity.ERROR,
) -> Diagnostic:
    return Diagnostic(
        rule=rule,
        severity=severity,
        path=path,
        line=getattr(node, "lineno", 0) if node is not None else 0,
        col=getattr(node, "col_offset", 0) if node is not None else 0,
        message=message,
        hint=rule_hint(rule),
    )


# ---------------------------------------------------------------------------
# Whitelist conformance (shared verbatim with the runtime interpreter)
# ---------------------------------------------------------------------------


def check_whitelist(tree: ast.AST, path: str = "<rdo>") -> list[Diagnostic]:
    """Collect every safe-subset violation with its position.

    This is the exact rule set :func:`repro.core.interpreter.validate_source`
    enforces at load time — both consume :mod:`repro.lint.rules` — but
    reported exhaustively instead of fail-fast.
    """
    findings: list[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ALLOWED_NODES):
            findings.append(_diag(
                "RDO101", node, path,
                f"disallowed construct {type(node).__name__}",
            ))
            continue
        if isinstance(node, ast.Name) and node.id.startswith("__"):
            findings.append(_diag("RDO102", node, path, f"dunder name {node.id!r}"))
        elif isinstance(node, ast.Attribute):
            if node.attr.startswith("_"):
                findings.append(_diag(
                    "RDO103", node, path, f"underscore attribute {node.attr!r}"
                ))
            elif node.attr in FORBIDDEN_ATTRIBUTES:
                findings.append(_diag(
                    "RDO103", node, path, f"forbidden attribute {node.attr!r}"
                ))
        elif isinstance(node, ast.FunctionDef) and node.decorator_list:
            findings.append(_diag(
                "RDO104", node.decorator_list[0], path,
                f"decorator on function {node.name!r}",
            ))
    return findings


# ---------------------------------------------------------------------------
# Name resolution
# ---------------------------------------------------------------------------


def _bound_names(tree: ast.AST) -> set[str]:
    """Every name the module binds anywhere (flow-insensitive).

    Deliberately permissive: a name bound in any scope is considered
    defined everywhere, so the check produces no false positives at
    the cost of missing some cross-scope leaks (which the runtime's
    NameError still catches).
    """
    bound: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            bound.add(node.name)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            bound.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            args = node.args
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                bound.add(arg.arg)
            if args.vararg:
                bound.add(args.vararg.arg)
            if args.kwarg:
                bound.add(args.kwarg.arg)
    return bound


def check_names(
    tree: ast.AST, path: str = "<rdo>", extra_names: Iterable[str] = ()
) -> list[Diagnostic]:
    """Flag free names that resolve to nothing the sandbox provides."""
    known = _bound_names(tree) | set(SAFE_BUILTINS) | set(extra_names)
    findings: list[Diagnostic] = []
    seen: set[tuple[str, int, int]] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id not in known
            and not node.id.startswith("__")  # RDO102's department
        ):
            key = (node.id, node.lineno, node.col_offset)
            if key not in seen:
                seen.add(key)
                findings.append(_diag(
                    "RDO110", node, path, f"undefined name {node.id!r}"
                ))
    return findings


# ---------------------------------------------------------------------------
# Bounded-execution heuristic
# ---------------------------------------------------------------------------


def _has_loop_exit(body: list[ast.stmt]) -> bool:
    """True if the loop body can leave the loop (break/return/raise).

    Nested function bodies are skipped: a ``return`` inside a nested
    ``def`` does not exit the enclosing loop.  Nested loops keep their
    own breaks, so only ``Return``/``Raise`` — which unwind through
    any nesting — count from inside them.
    """

    def scan(stmts: list[ast.stmt], breaks_count: bool) -> bool:
        for stmt in stmts:
            if isinstance(stmt, (ast.Return, ast.Raise)):
                return True
            if breaks_count and isinstance(stmt, ast.Break):
                return True
            if isinstance(stmt, ast.FunctionDef):
                continue
            inner_breaks = breaks_count and not isinstance(stmt, (ast.For, ast.While))
            for field in ("body", "orelse", "finalbody"):
                if scan(getattr(stmt, field, []) or [], inner_breaks):
                    return True
            for handler in getattr(stmt, "handlers", []) or []:
                if scan(handler.body, inner_breaks):
                    return True
        return False

    return scan(body, breaks_count=True)


def check_bounded_loops(tree: ast.AST, path: str = "<rdo>") -> list[Diagnostic]:
    """Flag loops whose step budget cannot be statically bounded."""
    findings: list[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.While):
            continue
        test_is_constant_true = (
            isinstance(node.test, ast.Constant) and bool(node.test.value)
        )
        if test_is_constant_true and not _has_loop_exit(node.body):
            findings.append(_diag(
                "RDO401", node, path,
                "while-loop over a constant-true condition with no "
                "break/return/raise",
            ))
    return findings


# ---------------------------------------------------------------------------
# Marshal-ability of literal return values
# ---------------------------------------------------------------------------


def _literal_marshal_problem(node: ast.expr) -> Optional[ast.expr]:
    """Return the offending sub-expression if a literal value cannot be
    marshalled; ``None`` when marshallable or statically unknown."""
    if isinstance(node, ast.Constant):
        if node.value is None or isinstance(node.value, MARSHALLABLE_TYPES):
            return None
        return node  # complex, Ellipsis, ...
    if isinstance(node, ast.Set):
        return node
    if isinstance(node, ast.Call):
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in UNMARSHALLABLE_CONSTRUCTORS
        ):
            return node
        return None  # result type unknown statically
    if isinstance(node, (ast.List, ast.Tuple)):
        for element in node.elts:
            problem = _literal_marshal_problem(element)
            if problem is not None:
                return problem
        return None
    if isinstance(node, ast.Dict):
        for child in list(node.keys) + list(node.values):
            if child is None:  # {**spread}
                continue
            problem = _literal_marshal_problem(child)
            if problem is not None:
                return problem
        return None
    return None  # names, calls, arithmetic: unknown statically


def check_marshallable_returns(tree: ast.AST, path: str = "<rdo>") -> list[Diagnostic]:
    """Flag ``return`` statements whose literal value the wire format
    cannot carry (sets, and constants outside the codec's type set)."""
    findings: list[Diagnostic] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Return) and node.value is not None:
            problem = _literal_marshal_problem(node.value)
            if problem is not None:
                kind = (
                    "set literal" if isinstance(problem, (ast.Set, ast.Call))
                    else f"constant {getattr(problem, 'value', None)!r}"
                )
                findings.append(_diag(
                    "RDO301", problem, path,
                    f"return value contains unmarshallable {kind}",
                ))
    return findings


# ---------------------------------------------------------------------------
# Mutation purity
# ---------------------------------------------------------------------------


def _root_name(node: ast.expr) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _state_aliases(fn: ast.FunctionDef, state_param: str) -> set[str]:
    """Names that (may) reference the state dict or a view into it.

    ``x = state`` and ``x = state["k"]`` alias state (mutating ``x``
    mutates the object's data); ``x = dict(state["k"])`` does not (any
    call result is treated as a fresh value).  Iterated to a fixpoint
    so chains of aliases are tracked.
    """
    aliases = {state_param}
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if isinstance(value, ast.Call):
                continue  # constructors/copies produce fresh values
            root = _root_name(value) if isinstance(
                value, (ast.Name, ast.Subscript, ast.Attribute)
            ) else None
            if root not in aliases:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id not in aliases:
                    aliases.add(target.id)
                    changed = True
    return aliases


def find_state_mutation(fn: ast.FunctionDef) -> Optional[ast.AST]:
    """First statement that mutates the method's state parameter.

    A mutation is an assignment/augmented-assignment/delete through a
    subscript or attribute rooted at the state parameter (or an alias
    or view of it), or a call of an in-place mutating method on one.
    """
    params = fn.args.posonlyargs + fn.args.args
    if not params:
        return None
    aliases = _state_aliases(fn, params[0].arg)

    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    if _root_name(target) in aliases:
                        return node
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    if _root_name(target) in aliases:
                        return node
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
                and _root_name(func.value) in aliases
            ):
                return node
    return None


def check_mutation_purity(
    tree: ast.Module, interface: InterfaceLike, path: str = "<rdo>"
) -> list[Diagnostic]:
    """Cross-check method bodies against their declared ``mutates`` flag.

    A hidden mutation (``mutates=False`` but the body writes state) is
    an ERROR: the access manager would run the method on the cached
    copy without marking it tentative or queueing an export, so the
    update silently never reaches the home server — a coherence bug
    that is undetectable at runtime.  The converse (``mutates=True``
    but no mutation found) is a WARNING: correct but wasteful.
    """
    findings: list[Diagnostic] = []
    defined: dict[str, ast.FunctionDef] = {
        node.name: node for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    for name in interface.method_names():
        fn = defined.get(name)
        if fn is None:
            findings.append(_diag(
                "RDO203", None, path,
                f"interface method {name!r} is not defined in the RDO code",
            ))
            continue
        mutation = find_state_mutation(fn)
        declared = interface.mutates(name)
        if mutation is not None and not declared:
            findings.append(_diag(
                "RDO201", mutation, path,
                f"method {name!r} mutates its state parameter but is "
                f"declared mutates=False",
            ))
        elif mutation is None and declared:
            findings.append(_diag(
                "RDO202", fn, path,
                f"method {name!r} is declared mutates=True but never "
                f"mutates its state parameter",
                severity=Severity.WARNING,
            ))
    return findings


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def check_code(
    source: str, path: str = "<rdo>", extra_names: Iterable[str] = ()
) -> list[Diagnostic]:
    """Verify bare RDO source (no interface): the whole-code rule set.

    Used for the ship path, where client code travels without an
    interface.  ``extra_names`` declares host-provided helpers (the
    server's ``lookup``/``objects`` environment).
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Diagnostic(
            rule="RDO100",
            severity=Severity.ERROR,
            path=path,
            line=exc.lineno or 0,
            col=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}",
            hint=rule_hint("RDO100"),
        )]
    findings = check_whitelist(tree, path)
    findings += check_names(tree, path, extra_names)
    findings += check_bounded_loops(tree, path)
    findings += check_marshallable_returns(tree, path)
    return sort_diagnostics(findings)


def verify_rdo(
    code: str,
    interface: Optional[InterfaceLike] = None,
    path: str = "<rdo>",
    extra_names: Iterable[str] = (),
) -> list[Diagnostic]:
    """Full publish-time verification of an RDO's code + interface.

    Returns every finding; the caller decides what severity gates
    (publish hooks reject on :class:`Severity.ERROR`).  An RDO with no
    code is vacuously fine — it is pure data.
    """
    if not code:
        return []
    findings = check_code(code, path, extra_names)
    if any(d.rule == "RDO100" for d in findings):
        return findings  # nothing below is meaningful without a parse
    if interface is not None:
        tree = ast.parse(code)
        findings += check_mutation_purity(tree, interface, path)
    return sort_diagnostics(findings)
