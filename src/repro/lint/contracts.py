"""Layer contracts: which effects are allowed where.

``repro.lint.rules`` is the precedent for this module's role — a pile
of declarative tables shared between the static tooling and the
runtime, so the two can never drift apart.  Here the tables answer a
different question: *which side effects may code in each layer of the
tree perform, directly or transitively?*

Three kinds of contract:

* **Scope contracts** (:data:`LAYER_CONTRACTS`) — every function whose
  file lives under one of the contract's path prefixes must avoid the
  forbidden effects.  The simulation kernel, the Rover core, and the
  simulated network must never read the real clock, draw unseeded
  randomness, or touch real sockets: a scenario's entire trace must be
  a pure function of its parameters and seed.

* **Entry-point contracts** — functions *registered* somewhere
  (QRPC server handlers, compaction rules) must be **replay-pure**:
  the whole call tree under them may not reach any effect in
  :data:`REPLAY_FORBIDS`, because the stable log replays them and the
  paper's coherence story assumes re-execution is deterministic and
  idempotent.  Marked via :func:`replay_pure` or discovered from
  ``transport.register(...)`` call sites.

* **Marshal contracts** — ``to_wire``/``from_wire`` and anything
  marked :func:`marshal_stable` may not iterate unordered containers
  (:data:`MARSHAL_FORBIDS`): bytes-on-wire must not depend on the
  per-process string hash salt.

This module imports only the standard library so that ``repro.core``,
``repro.net`` and ``repro.perf`` can import the decorators without
cycles.
"""

from __future__ import annotations

import enum
from typing import Callable, TypeVar


class Effect(enum.Enum):
    """The effect lattice tracked by :mod:`repro.lint.effects`."""

    WALLCLOCK = "WALLCLOCK"           # time.time(), datetime.now(), ...
    UNSEEDED_RNG = "UNSEEDED_RNG"     # module-level random.*, os.urandom, uuid4
    REAL_SOCKET = "REAL_SOCKET"       # socket.socket() and friends
    FS_IO = "FS_IO"                   # open(), os file ops, pathlib writes
    BLOCKING_SLEEP = "BLOCKING_SLEEP" # time.sleep()
    DURABLE_LOG_WRITE = "DURABLE_LOG_WRITE"  # StableLog.append and backends
    GLOBAL_MUTATION = "GLOBAL_MUTATION"      # assignment through `global`
    UNORDERED_ITER = "UNORDERED_ITER"        # iterating a set in hash order

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return self.value


#: Effects a replayed function may never reach: replaying the stable
#: log must be deterministic (no clock/RNG/iteration-order input) and
#: idempotent (no I/O or global state outside the object store).
REPLAY_FORBIDS = frozenset(
    {
        Effect.WALLCLOCK,
        Effect.UNSEEDED_RNG,
        Effect.REAL_SOCKET,
        Effect.FS_IO,
        Effect.BLOCKING_SLEEP,
        Effect.DURABLE_LOG_WRITE,
        Effect.GLOBAL_MUTATION,
    }
)

#: Effects a marshal path may never reach: wire bytes are compared and
#: hashed across processes, so hash-order iteration is a silent
#: cross-process divergence.
MARSHAL_FORBIDS = frozenset({Effect.UNORDERED_ITER})


class LayerContract:
    """Every function under ``prefixes`` must avoid ``forbids``."""

    __slots__ = ("name", "prefixes", "forbids", "rationale")

    def __init__(
        self,
        name: str,
        prefixes: tuple[str, ...],
        forbids: frozenset[Effect],
        rationale: str,
    ) -> None:
        self.name = name
        self.prefixes = prefixes
        self.forbids = forbids
        self.rationale = rationale

    def covers(self, relpath: str) -> bool:
        """True when ``relpath`` (posix, relative to the source root,
        e.g. ``repro/sim/events.py``) falls under this contract."""
        normalized = relpath.replace("\\", "/")
        for prefix in self.prefixes:
            if prefix.endswith("/"):
                if normalized.startswith(prefix) or ("/" + prefix) in normalized:
                    return True
            elif normalized == prefix or normalized.endswith("/" + prefix):
                return True
        return False


#: The scope contracts, checked by ``python -m repro.lint --effects``.
LAYER_CONTRACTS: tuple[LayerContract, ...] = (
    LayerContract(
        name="sim-pure",
        prefixes=("repro/sim/", "repro/core/", "repro/net/simnet.py"),
        forbids=frozenset(
            {Effect.WALLCLOCK, Effect.UNSEEDED_RNG, Effect.REAL_SOCKET}
        ),
        rationale=(
            "simulated time and seeded RNG are the only nondeterminism "
            "sources a scenario may have"
        ),
    ),
    LayerContract(
        name="hash-order",
        prefixes=("repro/",),
        forbids=frozenset({Effect.UNORDERED_ITER}),
        rationale=(
            "event traces, stable logs, and wire bytes must not depend "
            "on the per-process string hash salt"
        ),
    ),
)


#: Files allowed to touch the real clock (``DET101`` in the file-local
#: sanitizer, ``WALLCLOCK``/``BLOCKING_SLEEP`` here).  This used to be
#: a blanket ``repro/live/`` exemption; only these two modules
#: legitimately bridge simulated and real time.
WALLCLOCK_SANCTIONED: tuple[str, ...] = (
    "repro/live/clock.py",
    "repro/live/transport.py",
    # The speed benchmark measures the real CPU cost of running the
    # (still fully deterministic) simulation; all its clock reads are
    # confined to this one module.
    "repro/speed/measure.py",
)

#: Files allowed to construct RNGs.  ``repro/sim/rng.py`` derives
#: seeded ``random.Random`` streams; nothing else may.
RNG_SANCTIONED: tuple[str, ...] = ("repro/sim/rng.py",)

#: Files allowed to open real sockets.
SOCKET_SANCTIONED: tuple[str, ...] = ("repro/live/transport.py",)


def sanctioned_for(effect: Effect) -> tuple[str, ...]:
    """Paths exempt from scope-contract findings for ``effect``."""
    if effect in (Effect.WALLCLOCK, Effect.BLOCKING_SLEEP):
        return WALLCLOCK_SANCTIONED
    if effect is Effect.UNSEEDED_RNG:
        return RNG_SANCTIONED
    if effect is Effect.REAL_SOCKET:
        return SOCKET_SANCTIONED
    return ()


# ---------------------------------------------------------------------------
# Entry-point discovery tables
# ---------------------------------------------------------------------------

#: Qualified names (``module:Class.method`` or ``module:function``)
#: that are replay entry points even though no decorator or
#: ``register()`` call site names them.  Keep this list short — prefer
#: the decorator.
DECLARED_ENTRY_POINTS: dict[str, str] = {
    # marshal() walks arbitrary structured values into wire form; its
    # output is hashed and diffed across hosts.
    "repro/net/message.py:marshal": "marshal",
    "repro/net/message.py:unmarshal": "marshal",
    # The non-allocating sizer mirrors marshal()'s walk without
    # building bytes; it must honor the same iteration-order contract
    # or its byte counts drift from the real encoding.
    "repro/net/message.py:marshalled_size": "marshal",
}

#: Functions whose *declared* effect is accepted as their whole story:
#: the analyzer uses this intrinsic set and does not descend into their
#: bodies.  The justification lives here, next to the declaration.
DECLARED_EFFECTS: dict[str, frozenset[Effect]] = {
    # StableLog.append is the durability point by design; replayed
    # handlers must stay above it (the access manager logs, handlers
    # never re-log).
    "repro/storage/stable_log.py:StableLog.append": frozenset(
        {Effect.DURABLE_LOG_WRITE}
    ),
    # The file backend's append writes through a handle opened in
    # __init__; the write is file I/O even though no open() appears in
    # the method body.
    "repro/storage/stable_log.py:FileLogBackend.append": frozenset(
        {Effect.DURABLE_LOG_WRITE, Effect.FS_IO}
    ),
}

#: Functions asserted effect-free despite suspicious bodies — each with
#: a reason the analyzer cannot infer.
DECLARED_PURE: frozenset[str] = frozenset(
    {
        # make_rng derives a Random from an explicit (seed, stream)
        # pair — the construction is the sanctioned seeding point.
        "repro/sim/rng.py:make_rng",
    }
)


_F = TypeVar("_F", bound=Callable)


def replay_pure(fn: _F) -> _F:
    """Mark ``fn`` as a replay entry point.

    Identity at runtime; ``repro.lint.effects`` treats every function
    carrying this decorator — and every override of a decorated base
    method — as a root that must avoid :data:`REPLAY_FORBIDS`.
    """
    return fn


def marshal_stable(fn: _F) -> _F:
    """Mark ``fn`` as a marshal path (no unordered iteration).

    Identity at runtime; checked transitively against
    :data:`MARSHAL_FORBIDS` by ``python -m repro.lint --effects``.
    """
    return fn
