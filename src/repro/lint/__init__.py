"""Static analysis for the Rover toolkit.

Three AST-based analyzers over one diagnostic core:

* :mod:`repro.lint.verifier` — the RDO static verifier: publish-time
  enforcement of the safe subset, mutation purity against the declared
  interface, marshal-ability, name resolution, and bounded execution;
* :mod:`repro.lint.sanitizer` — the simulation-determinism sanitizer:
  a repo-wide lint (``python -m repro.lint src/repro``) flagging
  wall-clock access, unseeded randomness, and unordered-set iteration;
* :mod:`repro.lint.effects` — the whole-program effect analyzer
  (``python -m repro.lint --effects src/repro``): call-graph effect
  inference checked against the layer contracts in
  :mod:`repro.lint.contracts`, with witness call chains.

The rule tables both analyzers (and the runtime
:class:`~repro.core.interpreter.SafeInterpreter`) enforce live in
:mod:`repro.lint.rules`, so static and runtime checks cannot drift.

This package imports nothing from :mod:`repro.core`; it sits below the
toolkit in the dependency graph.
"""

from repro.lint.contracts import (
    LAYER_CONTRACTS,
    MARSHAL_FORBIDS,
    REPLAY_FORBIDS,
    Effect,
    marshal_stable,
    replay_pure,
)
from repro.lint.diagnostics import (
    Diagnostic,
    Severity,
    errors_only,
    format_diagnostics,
    sort_diagnostics,
)
from repro.lint.rules import (
    ALLOWED_NODES,
    FORBIDDEN_ATTRIBUTES,
    MARSHALLABLE_TYPES,
    MUTATING_METHODS,
    RULES,
    SAFE_BUILTINS,
)
from repro.lint.effects import (
    EffectReport,
    analyze_paths,
    analyze_sources,
)
from repro.lint.sanitizer import scan_file, scan_paths, scan_source
from repro.lint.verifier import (
    check_code,
    check_mutation_purity,
    check_whitelist,
    find_state_mutation,
    verify_rdo,
)

__all__ = [
    "ALLOWED_NODES",
    "Diagnostic",
    "Effect",
    "EffectReport",
    "LAYER_CONTRACTS",
    "MARSHAL_FORBIDS",
    "REPLAY_FORBIDS",
    "analyze_paths",
    "analyze_sources",
    "marshal_stable",
    "replay_pure",
    "FORBIDDEN_ATTRIBUTES",
    "MARSHALLABLE_TYPES",
    "MUTATING_METHODS",
    "RULES",
    "SAFE_BUILTINS",
    "Severity",
    "check_code",
    "check_mutation_purity",
    "check_whitelist",
    "errors_only",
    "find_state_mutation",
    "format_diagnostics",
    "scan_file",
    "scan_paths",
    "scan_source",
    "sort_diagnostics",
    "verify_rdo",
]
