"""Whole-program effect inference and layer-contract checking.

The file-local sanitizer (:mod:`repro.lint.sanitizer`) flags
``time.time()`` *where it is written*.  This module flags it *where it
is reached from*: it builds a module- and class-aware call graph over
the whole ``src/repro`` tree, infers each function's intrinsic effect
set, propagates effects to a transitive fixed point, and checks the
result against the declarative contracts in :mod:`repro.lint.contracts`.

Pipeline:

1. **Index** — parse every file; record modules, classes (bases,
   methods, attribute types), functions, imports.
2. **Intrinsics** — per function body, detect directly-performed
   effects (wall-clock reads, unseeded RNG, socket/file I/O, blocking
   sleeps, ``global`` mutation, hash-order set iteration).
3. **Call graph** — direct calls, ``self.method()``, attribute calls
   through inferred types (annotations, ``self.attr = ClassName()``,
   local assignments), constructor calls, function references passed
   as arguments (callbacks), and a name-based conservative fallback
   for dynamic dispatch (unioned over every class defining the name,
   minus ubiquitous builtin-container method names).
4. **Fixed point** — ``effects(f) = intrinsic(f) ∪ ⋃ effects(callee)``
   via a worklist.
5. **Contracts** — scope contracts report at the *frontier* (the
   in-scope function where the effect is intrinsic or enters from an
   out-of-scope callee); entry-point contracts (replay-pure handlers
   and compaction rules, marshal-stable paths) report at the root with
   a full witness chain down to the offending primitive.

Known, deliberate imprecision (documented in ``docs/LINTING.md``):
callbacks stored in containers or passed through intermediate
variables are not tracked, and the name-based fallback skips method
names that shadow builtin container methods (``append``, ``get``, …) —
typed resolution is required for those.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.lint.contracts import (
    DECLARED_EFFECTS,
    DECLARED_ENTRY_POINTS,
    DECLARED_PURE,
    LAYER_CONTRACTS,
    MARSHAL_FORBIDS,
    REPLAY_FORBIDS,
    Effect,
    sanctioned_for,
)
from repro.lint.diagnostics import Diagnostic, Severity

# ---------------------------------------------------------------------------
# Effect primitive tables
# ---------------------------------------------------------------------------

_WALLCLOCK_TIME_ATTRS = {"time", "monotonic", "perf_counter", "time_ns", "monotonic_ns"}
_WALLCLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}
_RNG_MODULE_ATTRS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "getrandbits", "randbytes", "seed",
}
_SOCKET_ATTRS = {"socket", "create_connection", "create_server", "socketpair"}
_OS_FS_ATTRS = {
    "open", "fsync", "fdatasync", "remove", "unlink", "rename", "replace",
    "mkdir", "makedirs", "rmdir", "truncate", "ftruncate", "listdir",
    "scandir", "stat", "lstat",
}
_UUID_RANDOM_ATTRS = {"uuid1", "uuid4"}

#: Consumers whose result does not depend on argument iteration order.
_ORDER_INSENSITIVE = {
    "sorted", "set", "frozenset", "sum", "min", "max", "any", "all", "len",
}

#: Method names too common on builtin containers/strings/files for the
#: name-based dynamic-dispatch fallback to be useful — resolving these
#: by name alone would wire every ``list.append`` to e.g.
#: ``StableLog.append``.  Typed resolution still covers them.
_FALLBACK_BLOCKLIST = {
    "append", "add", "pop", "popleft", "popitem", "update", "discard",
    "clear", "remove", "extend", "insert", "sort", "reverse", "copy",
    "get", "items", "keys", "values", "setdefault", "join", "split",
    "rsplit", "strip", "lstrip", "rstrip", "encode", "decode", "format",
    "startswith", "endswith", "replace", "find", "rfind", "index",
    "count", "lower", "upper", "zfill", "splitlines", "partition",
    "union", "intersection", "difference", "symmetric_difference",
    "issubset", "issuperset", "isdisjoint", "close", "flush", "write",
    "read", "readline", "readlines", "seek", "tell", "fileno", "send",
    "group", "groups", "match", "search", "sub", "findall",
}

_SET_RETURNING_ANN = ("set", "frozenset", "Set", "FrozenSet")


def _qual(relpath: str, cls: Optional[str], name: str) -> str:
    return f"{relpath}:{cls}.{name}" if cls else f"{relpath}:{name}"


def _is_self(expr) -> bool:
    return isinstance(expr, ast.Name) and expr.id == "self"


def _annotation_name(ann) -> Optional[str]:
    """Principal class name of an annotation: ``set[str]`` -> ``set``,
    ``Optional[Route]`` -> ``Route``, ``"Route"`` -> ``Route``."""
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        text = ann.value.split("[", 1)[0].strip()
        if text.startswith("Optional"):
            inner = ann.value.split("[", 1)
            if len(inner) == 2:
                return inner[1].rstrip("]").split("[", 1)[0].strip() or None
        return text or None
    if isinstance(ann, ast.Name):
        return ann.id
    if isinstance(ann, ast.Attribute):
        return ann.attr
    if isinstance(ann, ast.Subscript):
        head = _annotation_name(ann.value)
        if head == "Optional":
            return _annotation_name(ann.slice)
        return head
    return None


def _is_plain_set_expr(expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("set", "frozenset")
        and not expr.keywords
    )


# ---------------------------------------------------------------------------
# Index structures
# ---------------------------------------------------------------------------


@dataclass
class FunctionInfo:
    qualname: str
    relpath: str
    name: str
    cls: Optional[str]
    node: ast.AST
    lineno: int
    decorators: set[str] = field(default_factory=set)
    #: parameter name -> repo class name (from annotations)
    param_types: dict = field(default_factory=dict)
    #: parameters statically known to be set-typed
    set_params: set = field(default_factory=set)
    #: return annotation names a set type
    returns_set: bool = False


@dataclass
class ClassInfo:
    name: str
    relpath: str
    bases: list
    #: method name -> qualname
    methods: dict = field(default_factory=dict)
    #: attribute name -> "set" or a repo class name
    attr_types: dict = field(default_factory=dict)


@dataclass
class Finding:
    """One contract violation (or baseline bookkeeping entry)."""

    rule: str
    contract: str
    qualname: str
    effect: str
    #: [(qualname, call lineno), ...] from the reported function down to
    #: the function performing the effect
    chain: list
    #: (lineno, description) of the offending primitive
    evidence: tuple
    relpath: str
    lineno: int

    def key(self) -> tuple:
        return (self.rule, self.contract, self.qualname, self.effect)

    def baseline_line(self) -> str:
        return f"{self.rule} {self.contract} {self.qualname} {self.effect}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "contract": self.contract,
            "qualname": self.qualname,
            "effect": self.effect,
            "chain": [list(hop) for hop in self.chain],
            "evidence": list(self.evidence),
            "path": self.relpath,
            "line": self.lineno,
        }


@dataclass
class EffectReport:
    findings: list
    stale_baseline: list
    #: qualname -> frozenset[Effect] (the full fixed point, for tests)
    effects: dict
    #: replay/marshal roots that were discovered, for tests/tools
    replay_roots: set
    marshal_roots: set

    def diagnostics(self) -> list:
        out = []
        for f in self.findings:
            chain = " -> ".join(hop[0].split(":", 1)[1] for hop in f.chain)
            evidence = f"{f.evidence[1]} (line {f.evidence[0]})"
            message = (
                f"[{f.contract}] {f.qualname.split(':', 1)[1]} reaches "
                f"{f.effect}: {evidence}; witness: {chain}"
            )
            out.append(
                Diagnostic(
                    rule=f.rule,
                    severity=Severity.ERROR,
                    path=f.relpath,
                    line=f.lineno,
                    col=0,
                    message=message,
                    hint=(
                        "route the effect through the sim clock/seeded RNG, "
                        "sort the iteration, or add a justified baseline entry"
                    ),
                )
            )
        for entry in self.stale_baseline:
            out.append(
                Diagnostic(
                    rule="EFF901",
                    severity=Severity.WARNING,
                    path="lint-effects-baseline.txt",
                    line=0,
                    col=0,
                    message=f"stale baseline entry no longer matches any finding: {entry}",
                    hint="delete the line; the escape it sanctioned is gone",
                )
            )
        return out


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------


class EffectAnalyzer:
    def __init__(self, sources: dict) -> None:
        #: relpath -> ast.Module
        self.trees = {}
        for relpath, text in sorted(sources.items()):
            self.trees[relpath] = ast.parse(text, filename=relpath)
        #: dotted module name -> relpath
        self.module_map = {}
        for relpath in self.trees:
            dotted = relpath[:-3].replace("/", ".")
            if dotted.endswith(".__init__"):
                dotted = dotted[: -len(".__init__")]
            self.module_map[dotted] = relpath
        self.functions = {}          # qualname -> FunctionInfo
        self.classes = {}            # class name -> [ClassInfo] (collisions kept)
        self.subclasses = {}         # class name -> {subclass names}
        self.methods_by_name = {}    # method name -> {qualnames}
        self.module_functions = {}   # relpath -> {name: qualname}
        self.imports = {}            # relpath -> (module_aliases, from_imports)
        self.visible_modules = {}    # relpath -> {relpaths the module imports}
        self.set_functions = set()   # qualnames returning sets
        self.intrinsics = {}         # qualname -> {Effect: (lineno, desc)}
        self.edges = {}              # qualname -> {callee qualname: lineno}
        self.effects = {}            # qualname -> set[Effect]
        self.replay_roots = set()
        self.marshal_roots = set()

        self._index()
        self._infer()
        self._fixed_point()
        self._discover_roots()

    # -- indexing -----------------------------------------------------------

    def _index(self) -> None:
        for relpath, tree in self.trees.items():
            aliases, froms = {}, {}
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        aliases[alias.asname or alias.name.split(".")[0]] = alias.name
                elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                    for alias in node.names:
                        froms[alias.asname or alias.name] = (node.module, alias.name)
            self.imports[relpath] = (aliases, froms)
            visible = {relpath}
            for dotted in aliases.values():
                target = self.module_map.get(dotted)
                if target:
                    visible.add(target)
            for dotted, orig in froms.values():
                for candidate in (dotted, f"{dotted}.{orig}"):
                    target = self.module_map.get(candidate)
                    if target:
                        visible.add(target)
            self.visible_modules[relpath] = visible

            self.module_functions[relpath] = {}
            for node in tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._index_function(relpath, None, node)
                elif isinstance(node, ast.ClassDef):
                    self._index_class(relpath, node)

    def _index_function(self, relpath, cls, node) -> FunctionInfo:
        qualname = _qual(relpath, cls, node.name)
        info = FunctionInfo(
            qualname=qualname, relpath=relpath, name=node.name,
            cls=cls, node=node, lineno=node.lineno,
        )
        for dec in node.decorator_list:
            name = None
            if isinstance(dec, ast.Name):
                name = dec.id
            elif isinstance(dec, ast.Attribute):
                name = dec.attr
            elif isinstance(dec, ast.Call):
                if isinstance(dec.func, ast.Name):
                    name = dec.func.id
                elif isinstance(dec.func, ast.Attribute):
                    name = dec.func.attr
            if name:
                info.decorators.add(name)
        for arg in node.args.args + node.args.kwonlyargs:
            type_name = _annotation_name(arg.annotation)
            if type_name in _SET_RETURNING_ANN:
                info.set_params.add(arg.arg)
            elif type_name:
                info.param_types[arg.arg] = type_name
        if _annotation_name(node.returns) in _SET_RETURNING_ANN:
            info.returns_set = True
            self.set_functions.add(qualname)
        self.functions[qualname] = info
        self.methods_by_name.setdefault(node.name, set()).add(qualname)
        if cls is None:
            self.module_functions[relpath][node.name] = qualname
        return info

    def _index_class(self, relpath, node) -> None:
        bases = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                bases.append(base.attr)
        cinfo = ClassInfo(name=node.name, relpath=relpath, bases=bases)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                finfo = self._index_function(relpath, node.name, item)
                cinfo.methods[item.name] = finfo.qualname
            elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                type_name = _annotation_name(item.annotation)
                if type_name in _SET_RETURNING_ANN:
                    cinfo.attr_types[item.target.id] = "set"
                elif type_name:
                    cinfo.attr_types[item.target.id] = type_name
        # attribute types from `self.x = ...` in any method
        for item in ast.walk(node):
            target = value = None
            if isinstance(item, ast.Assign) and len(item.targets) == 1:
                target, value = item.targets[0], item.value
            elif isinstance(item, ast.AnnAssign) and item.target is not None:
                target, value = item.target, item.value
                if (
                    isinstance(target, ast.Attribute)
                    and _annotation_name(item.annotation) in _SET_RETURNING_ANN
                ):
                    if _is_self(target.value):
                        cinfo.attr_types[target.attr] = "set"
                        continue
            if (
                target is not None and value is not None
                and isinstance(target, ast.Attribute) and _is_self(target.value)
            ):
                if _is_plain_set_expr(value):
                    cinfo.attr_types.setdefault(target.attr, "set")
                elif isinstance(value, ast.Call):
                    ctor = None
                    if isinstance(value.func, ast.Name):
                        ctor = value.func.id
                    elif isinstance(value.func, ast.Attribute):
                        ctor = value.func.attr
                    if ctor and ctor[:1].isupper():
                        cinfo.attr_types.setdefault(target.attr, ctor)
        self.classes.setdefault(node.name, []).append(cinfo)
        for base in bases:
            self.subclasses.setdefault(base, set()).add(node.name)

    # -- class/graph helpers ------------------------------------------------

    def _descendants(self, cls_name: str) -> list:
        out, work = set(), [cls_name]
        while work:
            current = work.pop()
            for sub in sorted(self.subclasses.get(current, ())):
                if sub not in out:
                    out.add(sub)
                    work.append(sub)
        return sorted(out)

    def _ancestors(self, cls_name: str) -> list:
        out, work, seen = [], list(self.classes.get(cls_name, [])), {cls_name}
        while work:
            cinfo = work.pop(0)
            for base in cinfo.bases:
                if base not in seen:
                    seen.add(base)
                    out.append(base)
                    work.extend(self.classes.get(base, []))
        return out

    def _attr_type(self, cls_name: str, attr: str) -> Optional[str]:
        for name in [cls_name] + self._ancestors(cls_name):
            for cinfo in self.classes.get(name, ()):
                if attr in cinfo.attr_types:
                    return cinfo.attr_types[attr]
        return None

    def _resolve_method(self, cls_name: str, method: str, virtual: bool = True) -> list:
        """Method defs on ``cls_name``, its ancestors, and (when
        ``virtual``) every descendant override — the conservative
        dynamic-dispatch union."""
        out = set()
        for name in [cls_name] + self._ancestors(cls_name):
            for cinfo in self.classes.get(name, ()):
                if method in cinfo.methods:
                    out.add(cinfo.methods[method])
        if virtual:
            for sub in self._descendants(cls_name):
                for cinfo in self.classes.get(sub, ()):
                    if method in cinfo.methods:
                        out.add(cinfo.methods[method])
        return sorted(out)

    def _resolve_module_entity(self, relpath: str, dotted: str, name: str):
        """Resolve ``module.name`` to a function qualname or class name."""
        target = self.module_map.get(dotted)
        if target is None:
            return None, None
        qualname = self.module_functions.get(target, {}).get(name)
        if qualname:
            return qualname, None
        for cinfo in self.classes.get(name, ()):
            if cinfo.relpath == target:
                return None, name
        return None, None

    # -- intrinsic effects + local edges ------------------------------------

    def _infer(self) -> None:
        for qualname, info in self.functions.items():
            self.intrinsics[qualname] = {}
            self.edges[qualname] = {}
            self._infer_function(info)

    def _infer_function(self, info: FunctionInfo) -> None:
        relpath = info.relpath
        aliases, froms = self.imports[relpath]
        intrinsic = self.intrinsics[info.qualname]
        edges = self.edges[info.qualname]

        def module_of(node) -> Optional[str]:
            """Dotted module a Name/Attribute expression refers to."""
            if isinstance(node, ast.Name):
                return aliases.get(node.id)
            if isinstance(node, ast.Attribute):
                base = module_of(node.value)
                if base is not None:
                    return f"{base}.{node.attr}"
            return None

        def record(effect: Effect, node, desc: str) -> None:
            intrinsic.setdefault(effect, (node.lineno, desc))

        def add_edge(callee: str, node) -> None:
            edges.setdefault(callee, node.lineno)

        body = info.node.body
        global_names = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                global_names.update(node.names)

        # Set-typedness of locals: small fixed point over assignments.
        set_locals = set(info.set_params)
        changed = True
        while changed:
            changed = False
            for node in ast.walk(info.node):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    name = node.targets[0].id
                    if name not in set_locals and self._is_set_expr(
                        node.value, info, set_locals
                    ):
                        set_locals.add(name)
                        changed = True
                elif (
                    isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Name)
                    and _annotation_name(node.annotation) in _SET_RETURNING_ANN
                    and node.target.id not in set_locals
                ):
                    set_locals.add(node.target.id)
                    changed = True

        # Iteration positions consumed order-insensitively are exempt.
        exempt_iters = set()
        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_INSENSITIVE
            ):
                for arg in node.args:
                    exempt_iters.add(id(arg))
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                        for gen in arg.generators:
                            exempt_iters.add(id(gen.iter))

        for node in ast.walk(info.node):
            if isinstance(node, (ast.Name, ast.Attribute)) and isinstance(
                getattr(node, "ctx", None), ast.Store
            ):
                if isinstance(node, ast.Name) and node.id in global_names:
                    record(
                        Effect.GLOBAL_MUTATION, node,
                        f"assigns module global '{node.id}'",
                    )

            if isinstance(node, ast.For):
                if id(node.iter) not in exempt_iters and self._iterates_set(
                    node.iter, info, set_locals
                ):
                    record(
                        Effect.UNORDERED_ITER, node,
                        f"for-loop over set `{ast.unparse(node.iter)}`",
                    )
            elif isinstance(node, ast.SetComp):
                pass  # result is itself a set; order cannot be observed here
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if (
                        id(gen.iter) not in exempt_iters
                        and id(node) not in exempt_iters
                        and self._iterates_set(gen.iter, info, set_locals)
                    ):
                        record(
                            Effect.UNORDERED_ITER, gen.iter,
                            f"comprehension over set `{ast.unparse(gen.iter)}`",
                        )

            if not isinstance(node, ast.Call):
                continue
            func = node.func

            # --- effect primitives ---
            if isinstance(func, ast.Name):
                if func.id == "open":
                    record(Effect.FS_IO, node, "builtin open()")
                origin = froms.get(func.id)
                if origin:
                    dotted, orig = origin
                    if dotted == "time":
                        if orig == "sleep":
                            record(Effect.BLOCKING_SLEEP, node, "time.sleep()")
                        elif orig in _WALLCLOCK_TIME_ATTRS:
                            record(Effect.WALLCLOCK, node, f"time.{orig}()")
                    elif dotted == "random" and orig in _RNG_MODULE_ATTRS:
                        record(Effect.UNSEEDED_RNG, node, f"random.{orig}()")
                    elif dotted == "socket" and orig in _SOCKET_ATTRS:
                        record(Effect.REAL_SOCKET, node, f"socket.{orig}()")
                    elif dotted == "os" and orig in _OS_FS_ATTRS:
                        record(Effect.FS_IO, node, f"os.{orig}()")
                    elif dotted == "os" and orig == "urandom":
                        record(Effect.UNSEEDED_RNG, node, "os.urandom()")
                    elif dotted == "uuid" and orig in _UUID_RANDOM_ATTRS:
                        record(Effect.UNSEEDED_RNG, node, f"uuid.{orig}()")
                    elif dotted == "datetime" and orig in ("datetime", "date"):
                        pass  # constructor with explicit fields: fine
            elif isinstance(func, ast.Attribute):
                dotted = module_of(func.value)
                attr = func.attr
                if dotted == "time":
                    if attr == "sleep":
                        record(Effect.BLOCKING_SLEEP, node, "time.sleep()")
                    elif attr in _WALLCLOCK_TIME_ATTRS:
                        record(Effect.WALLCLOCK, node, f"time.{attr}()")
                elif dotted == "random":
                    if attr in _RNG_MODULE_ATTRS:
                        record(Effect.UNSEEDED_RNG, node, f"random.{attr}()")
                    elif attr == "Random" and not node.args and not node.keywords:
                        record(Effect.UNSEEDED_RNG, node, "random.Random() without a seed")
                    elif attr == "SystemRandom":
                        record(Effect.UNSEEDED_RNG, node, "random.SystemRandom()")
                elif dotted == "socket" and attr in _SOCKET_ATTRS:
                    record(Effect.REAL_SOCKET, node, f"socket.{attr}()")
                elif dotted == "os" and attr in _OS_FS_ATTRS:
                    record(Effect.FS_IO, node, f"os.{attr}()")
                elif dotted == "os" and attr == "urandom":
                    record(Effect.UNSEEDED_RNG, node, "os.urandom()")
                elif dotted == "os.path" and attr in ("exists", "getsize", "getmtime"):
                    record(Effect.FS_IO, node, f"os.path.{attr}()")
                elif dotted == "uuid" and attr in _UUID_RANDOM_ATTRS:
                    record(Effect.UNSEEDED_RNG, node, f"uuid.{attr}()")
                elif dotted == "shutil":
                    record(Effect.FS_IO, node, f"shutil.{attr}()")
                elif dotted in ("datetime", "datetime.datetime", "datetime.date"):
                    if attr in _WALLCLOCK_DATETIME_ATTRS:
                        record(Effect.WALLCLOCK, node, f"{dotted}.{attr}()")
                elif dotted is None and attr in _WALLCLOCK_DATETIME_ATTRS:
                    # `datetime.now()` via `from datetime import datetime`
                    if (
                        isinstance(func.value, ast.Name)
                        and froms.get(func.value.id, ("", ""))[0] == "datetime"
                    ):
                        record(Effect.WALLCLOCK, node, f"datetime.{attr}()")

            # --- call edges ---
            self._add_call_edges(info, node, add_edge)

    def _add_call_edges(self, info, node, add_edge) -> None:
        relpath = info.relpath
        aliases, froms = self.imports[relpath]
        func = node.func

        if isinstance(func, ast.Name):
            name = func.id
            qualname = self.module_functions[relpath].get(name)
            if qualname:
                add_edge(qualname, node)
            elif name in froms:
                dotted, orig = froms[name]
                target_fn, target_cls = self._resolve_module_entity(relpath, dotted, orig)
                if target_fn:
                    add_edge(target_fn, node)
                elif target_cls:
                    for ctor in self._resolve_method(target_cls, "__init__", virtual=False):
                        add_edge(ctor, node)
            elif name in self.classes:
                for cinfo in self.classes[name]:
                    if cinfo.relpath == relpath and "__init__" in cinfo.methods:
                        add_edge(cinfo.methods["__init__"], node)
        elif isinstance(func, ast.Attribute):
            attr = func.attr
            base = func.value
            resolved = False
            if (
                isinstance(base, ast.Call)
                and isinstance(base.func, ast.Name)
                and base.func.id == "super"
            ):
                # super().method() -> the nearest ancestor definition(s)
                if info.cls:
                    for ancestor in self._ancestors(info.cls):
                        targets = []
                        for cinfo in self.classes.get(ancestor, ()):
                            if attr in cinfo.methods:
                                targets.append(cinfo.methods[attr])
                        if targets:
                            for m in sorted(targets):
                                add_edge(m, node)
                            break
                return
            if isinstance(base, ast.Name):
                dotted = aliases.get(base.id)
                if dotted:
                    target_fn, target_cls = self._resolve_module_entity(relpath, dotted, attr)
                    if target_fn:
                        add_edge(target_fn, node)
                    elif target_cls:
                        for ctor in self._resolve_method(target_cls, "__init__", virtual=False):
                            add_edge(ctor, node)
                    # a module attribute (repo or stdlib) is never a
                    # repo method: do not fall back by name
                    resolved = True
                elif base.id in froms:
                    from_dotted, orig = froms[base.id]
                    # `from repro.net import message` → message.marshal(...)
                    target_fn, target_cls = self._resolve_module_entity(
                        relpath, f"{from_dotted}.{orig}", attr
                    )
                    if target_fn:
                        add_edge(target_fn, node)
                        resolved = True
                    elif orig in self.classes or target_cls:
                        for m in self._resolve_method(target_cls or orig, attr):
                            add_edge(m, node)
                        resolved = True
            type_name = self._static_type(base, info)
            if not resolved and type_name:
                targets = self._resolve_method(type_name, attr)
                if targets:
                    for m in targets:
                        add_edge(m, node)
                    resolved = True
            if (
                not resolved
                and attr not in _FALLBACK_BLOCKLIST
                and not attr.startswith("__")
            ):
                visible = self.visible_modules[relpath]
                for m in sorted(self.methods_by_name.get(attr, ())):
                    if self.functions[m].relpath in visible:
                        add_edge(m, node)

        # Function references passed as callback arguments.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Name):
                qualname = self.module_functions[relpath].get(arg.id)
                if qualname:
                    add_edge(qualname, node)
                elif arg.id in froms:
                    dotted, orig = froms[arg.id]
                    target_fn, __ = self._resolve_module_entity(relpath, dotted, orig)
                    if target_fn:
                        add_edge(target_fn, node)
            elif isinstance(arg, ast.Attribute):
                if _is_self(arg.value) and info.cls:
                    for m in self._resolve_method(info.cls, arg.attr):
                        add_edge(m, node)
                else:
                    ref_type = self._static_type(arg.value, info)
                    if ref_type:
                        for m in self._resolve_method(ref_type, arg.attr):
                            add_edge(m, node)

    def _static_type(self, expr, info: FunctionInfo) -> Optional[str]:
        """Best-effort nominal type of ``expr`` (a repo class name)."""
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return info.cls
            if expr.id in info.param_types:
                return info.param_types[expr.id]
            # local `x = ClassName(...)`
            assigned = self._local_ctor_type(expr.id, info)
            if assigned:
                return assigned
            return None
        if isinstance(expr, ast.Attribute) and _is_self(expr.value) and info.cls:
            attr_type = self._attr_type(info.cls, expr.attr)
            if attr_type and attr_type != "set":
                return attr_type
        return None

    def _local_ctor_type(self, name: str, info: FunctionInfo) -> Optional[str]:
        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == name
                and isinstance(node.value, ast.Call)
            ):
                ctor = node.value.func
                if isinstance(ctor, ast.Name) and ctor.id in self.classes:
                    return ctor.id
                if isinstance(ctor, ast.Attribute) and ctor.attr in self.classes:
                    return ctor.attr
        return None

    # -- set-typedness ------------------------------------------------------

    def _is_set_expr(self, expr, info: FunctionInfo, set_locals) -> bool:
        if _is_plain_set_expr(expr):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in set_locals
        if isinstance(expr, ast.Attribute) and _is_self(expr.value) and info.cls:
            return self._attr_type(info.cls, expr.attr) == "set"
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor)
        ):
            return self._is_set_expr(expr.left, info, set_locals) or self._is_set_expr(
                expr.right, info, set_locals
            )
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return True
                qualname = self.module_functions[info.relpath].get(func.id)
                if qualname in self.set_functions:
                    return True
                __, froms = self.imports[info.relpath]
                if func.id in froms:
                    dotted, orig = froms[func.id]
                    target_fn, __cls = self._resolve_module_entity(
                        info.relpath, dotted, orig
                    )
                    if target_fn in self.set_functions:
                        return True
            elif isinstance(func, ast.Attribute):
                if func.attr in (
                    "union", "intersection", "difference", "symmetric_difference",
                ):
                    return self._is_set_expr(func.value, info, set_locals)
                if _is_self(func.value) and info.cls:
                    for m in self._resolve_method(info.cls, func.attr, virtual=False):
                        if m in self.set_functions:
                            return True
        return False

    def _iterates_set(self, iter_expr, info: FunctionInfo, set_locals) -> bool:
        # unwrap list()/tuple() snapshots: list(someset) is still hash order
        expr = iter_expr
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("list", "tuple")
            and len(expr.args) == 1
        ):
            expr = expr.args[0]
        return self._is_set_expr(expr, info, set_locals)

    # -- fixed point --------------------------------------------------------

    def _fixed_point(self) -> None:
        declared = {}
        for key, effects in DECLARED_EFFECTS.items():
            declared[key] = set(effects)
        for qualname in self.functions:
            if qualname in DECLARED_PURE:
                self.effects[qualname] = set()
            elif qualname in declared:
                self.effects[qualname] = set(declared[qualname])
            else:
                self.effects[qualname] = set(self.intrinsics[qualname])

        callers = {}
        for caller, callees in self.edges.items():
            for callee in callees:
                callers.setdefault(callee, set()).add(caller)

        work = list(self.functions)
        pending = set(work)
        while work:
            qualname = work.pop()
            pending.discard(qualname)
            if qualname in DECLARED_PURE or qualname in declared:
                continue
            merged = set(self.intrinsics[qualname])
            for callee in self.edges[qualname]:
                merged |= self.effects.get(callee, set())
            if merged != self.effects[qualname]:
                self.effects[qualname] = merged
                for caller in sorted(callers.get(qualname, ())):
                    if caller not in pending:
                        pending.add(caller)
                        work.append(caller)

    # -- entry-point discovery ----------------------------------------------

    def _discover_roots(self) -> None:
        # 1. decorators, with override propagation through subclasses
        decorated_replay, decorated_marshal = [], []
        for qualname, info in self.functions.items():
            if "replay_pure" in info.decorators:
                decorated_replay.append(info)
            if "marshal_stable" in info.decorators:
                decorated_marshal.append(info)
        for roots, decorated in (
            (self.replay_roots, decorated_replay),
            (self.marshal_roots, decorated_marshal),
        ):
            for info in decorated:
                roots.add(info.qualname)
                if info.cls:
                    for sub in self._descendants(info.cls):
                        for cinfo in self.classes.get(sub, ()):
                            if info.name in cinfo.methods:
                                roots.add(cinfo.methods[info.name])

        # 2. `<expr>.register("service", self.method)` call sites
        for qualname, info in self.functions.items():
            for node in ast.walk(info.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "register"
                    and len(node.args) >= 2
                ):
                    continue
                handler = node.args[1]
                if (
                    isinstance(handler, ast.Attribute)
                    and _is_self(handler.value)
                    and info.cls
                ):
                    for m in self._resolve_method(info.cls, handler.attr):
                        self.replay_roots.add(m)

        # 3. declared tables + wire-method naming convention
        for key, kind in DECLARED_ENTRY_POINTS.items():
            if key in self.functions:
                (self.marshal_roots if kind == "marshal" else self.replay_roots).add(key)
        for qualname, info in self.functions.items():
            if info.name in ("to_wire", "from_wire"):
                self.marshal_roots.add(qualname)

    # -- witness chains ------------------------------------------------------

    def witness(self, root: str, effect: Effect):
        """BFS from ``root`` to the nearest function where ``effect`` is
        intrinsic or declared; returns ([(qualname, lineno)...], evidence)."""
        parents = {root: None}
        queue = [root]
        terminal = None
        while queue:
            current = queue.pop(0)
            if effect in self.intrinsics.get(current, {}) or effect in DECLARED_EFFECTS.get(
                current, ()
            ):
                terminal = current
                break
            for callee in sorted(self.edges.get(current, {})):
                if callee in parents:
                    continue
                if effect in self.effects.get(callee, set()):
                    parents[callee] = current
                    queue.append(callee)
        if terminal is None:
            return [(root, self.functions[root].lineno)], (
                self.functions[root].lineno, effect.value,
            )
        chain = []
        current = terminal
        while current is not None:
            prev = parents[current]
            lineno = (
                self.edges[prev][current] if prev is not None
                else self.functions[root].lineno
            )
            chain.append((current, lineno))
            current = prev
        chain.reverse()
        if effect in self.intrinsics.get(terminal, {}):
            evidence = self.intrinsics[terminal][effect]
        else:
            evidence = (
                self.functions[terminal].lineno,
                f"declared effect on {terminal}",
            )
        return chain, evidence

    # -- contract checking ---------------------------------------------------

    def check(self) -> list:
        findings = []
        seen = set()

        def emit(rule, contract, qualname, effect):
            info = self.functions[qualname]
            chain, evidence = self.witness(qualname, effect)
            finding = Finding(
                rule=rule, contract=contract, qualname=qualname,
                effect=effect.value, chain=chain, evidence=evidence,
                relpath=info.relpath, lineno=info.lineno,
            )
            if finding.key() not in seen:
                seen.add(finding.key())
                findings.append(finding)

        # scope contracts: report at the frontier
        for contract in LAYER_CONTRACTS:
            for qualname, info in self.functions.items():
                if not contract.covers(info.relpath):
                    continue
                for effect in sorted(
                    self.effects[qualname] & contract.forbids, key=lambda e: e.value
                ):
                    if any(
                        info.relpath.endswith(p) or info.relpath == p
                        for p in sanctioned_for(effect)
                    ):
                        continue
                    frontier = effect in self.intrinsics[qualname] or effect in set(
                        DECLARED_EFFECTS.get(qualname, ())
                    )
                    if not frontier:
                        for callee in self.edges[qualname]:
                            callee_info = self.functions.get(callee)
                            if (
                                callee_info is not None
                                and effect in self.effects.get(callee, set())
                                and not contract.covers(callee_info.relpath)
                            ):
                                frontier = True
                                break
                    if frontier:
                        emit("EFF101", contract.name, qualname, effect)

        # replay-pure entry points
        for root in sorted(self.replay_roots):
            if root not in self.functions:
                continue
            for effect in sorted(
                self.effects[root] & REPLAY_FORBIDS, key=lambda e: e.value
            ):
                emit("EFF201", "replay-pure", root, effect)

        # marshal-stable entry points
        for root in sorted(self.marshal_roots):
            if root not in self.functions:
                continue
            for effect in sorted(
                self.effects[root] & MARSHAL_FORBIDS, key=lambda e: e.value
            ):
                emit("EFF301", "marshal-stable", root, effect)

        findings.sort(key=lambda f: (f.relpath, f.lineno, f.rule, f.effect))
        return findings


# ---------------------------------------------------------------------------
# Baseline files
# ---------------------------------------------------------------------------


def load_baseline(path: str) -> list:
    """Baseline lines: ``RULE contract qualname EFFECT``; ``#`` comments."""
    entries = []
    with open(path, encoding="utf-8") as handle:
        for raw in handle:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"malformed baseline line: {raw.strip()!r}")
            entries.append(tuple(parts))
    return entries


def apply_baseline(findings: list, entries: list) -> tuple:
    """Split findings into (unsanctioned, stale-baseline-entries)."""
    keys = {f.key(): f for f in findings}
    sanctioned = set()
    stale = []
    for entry in entries:
        if entry in keys:
            sanctioned.add(entry)
        else:
            stale.append(" ".join(entry))
    remaining = [f for f in findings if f.key() not in sanctioned]
    return remaining, stale


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def _source_root(path: str) -> str:
    """Given any path into the tree, find the directory containing the
    top-level ``repro`` package so relpaths read ``repro/...``."""
    absolute = os.path.abspath(path)
    current = absolute if os.path.isdir(absolute) else os.path.dirname(absolute)
    while True:
        if os.path.basename(current) == "repro" and os.path.isfile(
            os.path.join(current, "__init__.py")
        ):
            return os.path.dirname(current)
        parent = os.path.dirname(current)
        if parent == current:
            return os.path.dirname(absolute) or "."
        current = parent


def collect_sources(paths: Iterable) -> dict:
    sources = {}
    for path in paths:
        root = _source_root(path)
        if os.path.isfile(path):
            relpath = os.path.relpath(os.path.abspath(path), root).replace(os.sep, "/")
            with open(path, encoding="utf-8") as handle:
                sources[relpath] = handle.read()
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                relpath = os.path.relpath(os.path.abspath(full), root).replace(
                    os.sep, "/"
                )
                with open(full, encoding="utf-8") as handle:
                    sources[relpath] = handle.read()
    return sources


def analyze_sources(sources: dict, baseline_entries: Optional[list] = None) -> EffectReport:
    """Run the full pipeline over ``{relpath: source}`` (for tests)."""
    analyzer = EffectAnalyzer(sources)
    findings = analyzer.check()
    stale = []
    if baseline_entries is not None:
        findings, stale = apply_baseline(findings, baseline_entries)
    return EffectReport(
        findings=findings,
        stale_baseline=stale,
        effects={q: frozenset(e) for q, e in analyzer.effects.items()},
        replay_roots=set(analyzer.replay_roots),
        marshal_roots=set(analyzer.marshal_roots),
    )


def analyze_paths(paths: Iterable, baseline_path: Optional[str] = None) -> EffectReport:
    entries = None
    if baseline_path and os.path.isfile(baseline_path):
        entries = load_baseline(baseline_path)
    return analyze_sources(collect_sources(paths), entries)


def write_json(report: EffectReport, path: str) -> None:
    payload = {
        "findings": [f.to_json() for f in report.findings],
        "stale_baseline": list(report.stale_baseline),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
