"""The diagnostic core shared by both analyzers.

Every finding — from the RDO static verifier or the determinism
sanitizer — is a :class:`Diagnostic`: a stable rule id, a severity, a
position (file, line, column), a message, and a fix hint.  Keeping one
currency for findings means the publish-time hook, the CLI, and the
runtime interpreter all speak the same language, and a rejected RDO
surfaces as "which rule, where, how to fix" instead of a bare
exception string.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings gate (publish rejection, non-zero CLI exit);
    ``WARNING`` findings are reported but never block.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding, pinned to a source position."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def format(self) -> str:
        """``path:line:col: RULE severity: message (hint)``."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.severity}: {self.message}"
        if self.hint:
            text += f"  [{self.hint}]"
        return text

    def to_wire(self) -> dict:
        """Marshallable form (travels in publish/ship rejection replies)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    @staticmethod
    def from_wire(wire: dict) -> "Diagnostic":
        return Diagnostic(
            rule=wire["rule"],
            severity=Severity(wire.get("severity", "error")),
            path=wire.get("path", "<unknown>"),
            line=int(wire.get("line", 0)),
            col=int(wire.get("col", 0)),
            message=wire.get("message", ""),
            hint=wire.get("hint", ""),
        )


def sort_diagnostics(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """Stable presentation order: by file, position, then rule id."""
    return sorted(diagnostics, key=lambda d: (d.path, d.line, d.col, d.rule))


def errors_only(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    return [d for d in diagnostics if d.severity is Severity.ERROR]


def format_diagnostics(diagnostics: list[Diagnostic]) -> str:
    return "\n".join(d.format() for d in sort_diagnostics(diagnostics))
