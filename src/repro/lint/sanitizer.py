"""The simulation-determinism sanitizer.

The repo's north star is a *reproducible* simulation substrate: the
same seed must yield the same virtual-time schedule, the same
marshalled bytes, and the same merge outcomes on every run, on every
platform.  Three hazards quietly break that:

* **wall-clock reads** (``time.time()``, ``datetime.now()``) leak real
  time into virtual-time components — only :mod:`repro.live` may touch
  the real clock;
* **direct ``random`` use** bypasses :func:`repro.sim.rng.make_rng`'s
  named streams, so adding randomness to one component perturbs every
  other;
* **iteration over unordered set/dict-keys unions** makes insertion
  order — and therefore marshalled bytes, clash-report ordering, and
  scheduling ties — vary across processes (Python sets hash-order
  strings per-process unless ``PYTHONHASHSEED`` is pinned).

This pass walks a file tree's ASTs and flags all three.  Run it as
``python -m repro.lint src/repro``; the tree must come out clean and
CI gates on it.

Suppressions: a line comment ``lint: ignore[DETxxx]`` silences that
rule on that line; a bare ``lint: ignore`` silences every rule.  With
``strict_suppressions`` enabled (``--strict-suppressions`` on the CLI)
a suppression that silences nothing is itself reported (SUP001).

Path exemptions are no longer blanket subtrees: they come from the
sanctioned-path tables in :mod:`repro.lint.contracts` — only
``live/clock.py`` and ``live/transport.py`` may read the real clock,
and only ``sim/rng.py`` may construct RNGs.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterable, Optional

from repro.lint.contracts import Effect, sanctioned_for
from repro.lint.diagnostics import Diagnostic, Severity, sort_diagnostics
from repro.lint.rules import rule_hint

#: ``module.attribute`` pairs that read the real clock.
_WALLCLOCK_ATTRS = {
    "time": {"time", "monotonic", "perf_counter", "sleep", "time_ns", "monotonic_ns"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}

#: Names importable from ``time`` that read the real clock.
_WALLCLOCK_FROM_TIME = {"time", "monotonic", "perf_counter", "sleep"}

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Z0-9, ]+)\])?")


def _suppressions(source: str) -> dict[int, Optional[set[str]]]:
    """line number -> suppressed rule ids (``None`` = all rules)."""
    table: dict[int, Optional[set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _IGNORE_RE.search(line)
        if match is None:
            continue
        rules = match.group(1)
        if rules is None:
            table[lineno] = None
        else:
            table[lineno] = {r.strip() for r in rules.split(",") if r.strip()}
    return table


def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


#: Sanitizer rule -> the contract effect whose sanctioned paths exempt it.
_RULE_EFFECT = {"DET101": Effect.WALLCLOCK, "DET201": Effect.UNSEEDED_RNG}


def _exempt(rule: str, path: str) -> bool:
    """Per-contract scoping: a file is exempt from a rule only when the
    contracts table sanctions that effect for that exact file."""
    effect = _RULE_EFFECT.get(rule)
    if effect is None:
        return False
    normalized = _norm(path)
    return any(
        normalized == sanctioned or normalized.endswith("/" + sanctioned)
        for sanctioned in sanctioned_for(effect)
    )


def _is_setish(node: ast.expr) -> bool:
    """Expression whose value is an unordered set (statically evident):
    ``set(...)``/``frozenset(...)`` calls, ``.keys()`` views, set
    literals/comprehensions, and set-operator combinations of those."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in {"set", "frozenset"}:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_setish(node.left) or _is_setish(node.right)
    return False


def _is_unordered_union(node: ast.expr) -> bool:
    """A set-operator combination of set-ish operands — the hazard: the
    result's iteration order depends on per-process string hashing."""
    return isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ) and _is_setish(node)


class _FileSanitizer(ast.NodeVisitor):
    def __init__(self, path: str, suppressions: dict[int, Optional[set[str]]]) -> None:
        self.path = path
        self.suppressions = suppressions
        #: (lineno, rule) pairs a suppression actually silenced
        self.used_suppressions: set[tuple[int, str]] = set()
        self.findings: list[Diagnostic] = []

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        if _exempt(rule, self.path):
            return
        lineno = getattr(node, "lineno", 0)
        if lineno in self.suppressions:
            suppressed = self.suppressions[lineno]
            if suppressed is None or rule in suppressed:
                self.used_suppressions.add((lineno, rule))
                return
        self.findings.append(Diagnostic(
            rule=rule,
            severity=Severity.ERROR,
            path=self.path,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=rule_hint(rule),
        ))

    # -- DET101 / DET201: imports ------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self._report(
                    "DET201", node,
                    "direct import of the random module",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self._report("DET201", node, "direct import from the random module")
        elif node.module == "time":
            clocky = sorted(
                alias.name for alias in node.names
                if alias.name in _WALLCLOCK_FROM_TIME
            )
            if clocky:
                self._report(
                    "DET101", node,
                    f"wall-clock import from time: {', '.join(clocky)}",
                )
        self.generic_visit(node)

    # -- DET101 / DET201: attribute call sites ------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        root = node.value
        base = None
        if isinstance(root, ast.Name):
            base = root.id.lstrip("_")
        elif isinstance(root, ast.Attribute) and root.attr in ("datetime", "date"):
            base = root.attr  # datetime.datetime.now(), datetime.date.today()
        if base is not None:
            if node.attr in _WALLCLOCK_ATTRS.get(base, ()):  # time.time, ...
                self._report(
                    "DET101", node, f"wall-clock access {base}.{node.attr}"
                )
            if base == "random":
                self._report(
                    "DET201", node,
                    f"direct random-module use random.{node.attr}",
                )
        self.generic_visit(node)

    # -- DET301: unordered iteration ----------------------------------------

    def _check_iter(self, iter_node: ast.expr) -> None:
        if _is_unordered_union(iter_node):
            self._report(
                "DET301", iter_node,
                "iteration over an unordered set/dict-keys union",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for generator in node.generators:  # type: ignore[attr-defined]
            self._check_iter(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def _stale_suppressions(
    path: str,
    table: dict[int, Optional[set[str]]],
    used: set[tuple[int, str]],
) -> list[Diagnostic]:
    """SUP001 for every suppression (or listed rule) that silenced
    nothing — stale suppressions hide future regressions."""
    findings: list[Diagnostic] = []
    used_lines = {lineno for lineno, __ in used}
    for lineno in sorted(table):
        rules = table[lineno]
        if rules is None:
            stale = [] if lineno in used_lines else ["(all rules)"]
        else:
            stale = sorted(r for r in rules if (lineno, r) not in used)
        if not stale:
            continue
        findings.append(Diagnostic(
            rule="SUP001",
            severity=Severity.ERROR,
            path=path,
            line=lineno,
            col=0,
            message=f"stale suppression: {', '.join(stale)} not triggered here",
            hint=rule_hint("SUP001"),
        ))
    return findings


def scan_source(
    source: str, path: str = "<string>", strict_suppressions: bool = False
) -> list[Diagnostic]:
    """Sanitize one file's source text."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Diagnostic(
            rule="DET000",
            severity=Severity.ERROR,
            path=path,
            line=exc.lineno or 0,
            col=(exc.offset or 1) - 1,
            message=f"file does not parse: {exc.msg}",
        )]
    table = _suppressions(source)
    checker = _FileSanitizer(path, table)
    checker.visit(tree)
    findings = checker.findings
    if strict_suppressions:
        findings = findings + _stale_suppressions(
            path, table, checker.used_suppressions
        )
    return findings


def scan_file(path: str, strict_suppressions: bool = False) -> list[Diagnostic]:
    with open(path, "r", encoding="utf-8") as handle:
        return scan_source(handle.read(), path, strict_suppressions)


def scan_paths(
    paths: Iterable[str], strict_suppressions: bool = False
) -> list[Diagnostic]:
    """Sanitize files and/or directory trees (``.py`` files only)."""
    findings: list[Diagnostic] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        findings += scan_file(
                            os.path.join(dirpath, filename), strict_suppressions
                        )
        else:
            findings += scan_file(path, strict_suppressions)
    return sort_diagnostics(findings)
