"""``python -m repro.lint`` — the command-line front end.

Four modes:

* ``python -m repro.lint src/repro`` — run the determinism sanitizer
  over a file tree (the self-clean CI gate);
* ``python -m repro.lint --effects src/repro`` — run the whole-program
  effect analyzer and check the layer contracts (witness call chains
  on violation; sanctioned escapes live in ``lint-effects-baseline.txt``);
* ``python -m repro.lint --rdos`` — import the example applications and
  run the RDO static verifier over every published (code, interface)
  pair they define;
* ``python -m repro.lint --rules`` — print the rule catalogue.

``--strict-suppressions`` additionally fails the sanitizer on stale
suppression comments (``lint: ignore``) that no longer silence anything.

Exit status is 0 when no ERROR-severity findings, 1 otherwise.
"""

from __future__ import annotations

import argparse
import importlib
from typing import Optional

from repro.lint.diagnostics import (
    Diagnostic,
    Severity,
    errors_only,
    format_diagnostics,
)
from repro.lint.effects import analyze_paths, write_json
from repro.lint.rules import RULES
from repro.lint.sanitizer import scan_paths
from repro.lint.verifier import verify_rdo

#: Modules scanned by ``--rdos`` when none are named: every example
#: application that publishes RDO code.
DEFAULT_RDO_MODULES = (
    "repro.apps.mail",
    "repro.apps.calendar",
    "repro.apps.webproxy",
    "repro.bench.experiments",
    "repro.obs.fleet.admin",
    "repro.obs.fleet.sim",
)


def collect_module_rdos(module_name: str) -> list[tuple[str, str, object]]:
    """Find (label, code, interface) pairs published by a module.

    The convention across the example apps: module-level ``*_CODE``
    string constants paired with same-prefix ``*_INTERFACE`` objects
    (public or underscore-private).
    """
    module = importlib.import_module(module_name)
    pairs = []
    for attr in sorted(vars(module)):
        if not attr.endswith("_CODE"):
            continue
        code = getattr(module, attr)
        if not isinstance(code, str):
            continue
        interface = getattr(module, attr[: -len("_CODE")] + "_INTERFACE", None)
        if interface is None:
            continue
        pairs.append((f"{module_name}:{attr}", code, interface))
    return pairs


def verify_modules(module_names: list[str]) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    for module_name in module_names:
        for label, code, interface in collect_module_rdos(module_name):
            findings += verify_rdo(code, interface, path=label)
    return findings


def _print_rules() -> None:
    width = max(len(rule) for rule in RULES)
    for rule, (summary, hint) in sorted(RULES.items()):
        print(f"{rule:<{width}}  {summary}")
        if hint:
            print(f"{'':<{width}}    fix: {hint}")


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static RDO verifier + simulation-determinism sanitizer",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories for the determinism sanitizer",
    )
    parser.add_argument(
        "--rdos", nargs="*", metavar="MODULE", default=None,
        help="verify the RDOs published by these modules "
             f"(default when bare: {', '.join(DEFAULT_RDO_MODULES)})",
    )
    parser.add_argument(
        "--rules", action="store_true", help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--warnings-as-errors", action="store_true",
        help="exit non-zero on WARNING findings too",
    )
    parser.add_argument(
        "--effects", action="store_true",
        help="run the whole-program effect analyzer over the given paths "
             "instead of the file-local sanitizer",
    )
    parser.add_argument(
        "--effects-baseline", default="lint-effects-baseline.txt",
        metavar="FILE",
        help="baseline of sanctioned effect escapes (default: "
             "lint-effects-baseline.txt; missing file = empty baseline)",
    )
    parser.add_argument(
        "--effects-json", metavar="FILE", default=None,
        help="with --effects: dump the findings as JSON to FILE "
             "(written on both success and failure, for CI artifacts)",
    )
    parser.add_argument(
        "--strict-suppressions", action="store_true",
        help="sanitizer: also fail on stale lint-ignore comments that "
             "no longer suppress any diagnostic",
    )
    args = parser.parse_args(argv)

    if args.rules:
        _print_rules()
        return 0

    if not args.paths and args.rdos is None:
        parser.error("nothing to do: pass paths to sanitize and/or --rdos")

    findings: list[Diagnostic] = []
    if args.paths and args.effects:
        report = analyze_paths(args.paths, baseline_path=args.effects_baseline)
        findings += report.diagnostics()
        if args.effects_json:
            write_json(report, args.effects_json)
    elif args.paths:
        findings += scan_paths(
            args.paths, strict_suppressions=args.strict_suppressions
        )
    if args.rdos is not None:
        findings += verify_modules(list(args.rdos) or list(DEFAULT_RDO_MODULES))

    if findings:
        print(format_diagnostics(findings))
    gating = findings if args.warnings_as_errors else errors_only(findings)
    errors = len(errors_only(findings))
    warnings = len(findings) - errors
    print(f"repro.lint: {errors} error(s), {warnings} warning(s)")
    return 1 if gating else 0
