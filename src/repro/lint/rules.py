"""The shared rule tables: one source of truth for safety and lint.

These tables used to live inside :mod:`repro.core.interpreter`, which
meant the runtime sandbox was the *only* place the safe subset was
defined — a static verifier would inevitably drift from it.  They now
live here, imported by both the runtime interpreter (which enforces
them mid-invocation) and the static verifier (which enforces them at
publish time), so the two checks cannot disagree.

This module deliberately imports nothing from :mod:`repro.core` or
:mod:`repro.net`; it sits at the bottom of the dependency graph so the
interpreter, the verifier, and the sanitizer can all consume it.
"""

from __future__ import annotations

import ast
from typing import Any

#: Builtins available to RDO code: pure computation only.
SAFE_BUILTINS: dict[str, Any] = {
    "abs": abs,
    "all": all,
    "any": any,
    "bool": bool,
    "chr": chr,
    "dict": dict,
    "divmod": divmod,
    "enumerate": enumerate,
    "filter": filter,
    "float": float,
    "frozenset": frozenset,
    "int": int,
    "isinstance": isinstance,
    "len": len,
    "list": list,
    "map": map,
    "max": max,
    "min": min,
    "ord": ord,
    "pow": pow,
    "range": range,
    "repr": repr,
    "reversed": reversed,
    "round": round,
    "set": set,
    "sorted": sorted,
    "str": str,
    "sum": sum,
    "tuple": tuple,
    "zip": zip,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "KeyError": KeyError,
    "IndexError": IndexError,
    "ZeroDivisionError": ZeroDivisionError,
}

#: Attribute names RDO code may never touch (sandbox-escape vectors).
FORBIDDEN_ATTRIBUTES = frozenset({"format", "format_map", "mro"})

#: AST node types the safe subset admits.  Anything else is rejected —
#: no imports, no class definitions, no ``with``, no generators-as-
#: statements, no ``global``/``nonlocal``.
ALLOWED_NODES: tuple[type, ...] = (
    ast.Module,
    ast.FunctionDef,
    ast.arguments,
    ast.arg,
    ast.Lambda,
    ast.Return,
    ast.Pass,
    ast.Break,
    ast.Continue,
    ast.If,
    ast.IfExp,
    ast.For,
    ast.While,
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Delete,
    ast.Expr,
    ast.Call,
    ast.keyword,
    ast.Name,
    ast.Load,
    ast.Store,
    ast.Del,
    ast.Attribute,
    ast.Constant,
    ast.BinOp,
    ast.BoolOp,
    ast.UnaryOp,
    ast.Compare,
    ast.Subscript,
    ast.Slice,
    ast.List,
    ast.Tuple,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
    ast.comprehension,
    ast.Starred,
    ast.JoinedStr,
    ast.FormattedValue,
    ast.Raise,
    ast.Try,
    ast.ExceptHandler,
    ast.Assert,
    # operator / comparator leaf nodes
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
    ast.LShift, ast.RShift, ast.BitOr, ast.BitXor, ast.BitAnd, ast.MatMult,
    ast.And, ast.Or, ast.Not, ast.Invert, ast.UAdd, ast.USub,
    ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE,
    ast.Is, ast.IsNot, ast.In, ast.NotIn,
)

#: Python types :mod:`repro.net.message` can marshal.  Mirrored here
#: (rather than imported) to keep this module dependency-free; a test
#: asserts the mirror stays in sync with the real codec.
MARSHALLABLE_TYPES: tuple[type, ...] = (
    type(None), bool, int, float, str, bytes, list, tuple, dict,
)

#: Container-constructor names whose *literal* results cannot travel on
#: the wire (``repro.net.message`` has no tag for sets).
UNMARSHALLABLE_CONSTRUCTORS = frozenset({"set", "frozenset"})

#: Method names that mutate their receiver in place.  Used by the
#: mutation-purity analysis: calling one of these on (a view of) the
#: state parameter is a state mutation even though nothing is assigned.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem",
    "clear", "update", "setdefault", "add", "discard",
    "sort", "reverse",
})

#: The rule catalogue: id -> (summary, fix hint).  Docs and the CLI
#: ``--rules`` listing are generated from this table.
RULES: dict[str, tuple[str, str]] = {
    # -- RDO static verifier ------------------------------------------------
    "RDO100": (
        "RDO source does not parse",
        "fix the syntax error before publishing",
    ),
    "RDO101": (
        "construct outside the safe subset",
        "RDO code is restricted to plain functions over data; remove "
        "imports, classes, with/yield/global constructs",
    ),
    "RDO102": (
        "dunder name",
        "names starting with __ are sandbox-escape vectors; use plain names",
    ),
    "RDO103": (
        "forbidden attribute access",
        "underscore attributes and format/format_map/mro are blocked; "
        "operate on plain data instead",
    ),
    "RDO104": (
        "decorator on RDO function",
        "decorators execute arbitrary host code at load time; remove them",
    ),
    "RDO110": (
        "undefined name",
        "RDO code sees only its own functions, its parameters, and the "
        "safe builtins; pass extra values as method arguments",
    ),
    "RDO201": (
        "hidden mutation: method mutates state but is declared mutates=False",
        "declare mutates=True in the MethodSpec so the access manager "
        "marks the cached copy tentative and queues an export",
    ),
    "RDO202": (
        "method declared mutates=True but never mutates state",
        "declare mutates=False to avoid needless tentative marks and "
        "export rounds",
    ),
    "RDO203": (
        "interface method not defined in RDO code",
        "define the function or drop it from the RDOInterface",
    ),
    "RDO301": (
        "return value cannot be marshalled",
        "repro.net.message supports None/bool/int/float/str/bytes/"
        "list/tuple/dict; convert sets with sorted()",
    ),
    "RDO401": (
        "unbounded loop: the step budget cannot be statically bounded",
        "add a break/return, or loop over a finite iterable",
    ),
    # -- determinism sanitizer ---------------------------------------------
    "DET000": (
        "scanned file does not parse",
        "fix the syntax error; the sanitizer cannot analyse the file",
    ),
    "DET101": (
        "wall-clock access outside repro/live/",
        "simulated components must take time from the Simulator "
        "(sim.now); only the live/ substrate may read the real clock",
    ),
    "DET201": (
        "direct random-module use bypassing sim.rng.make_rng",
        "derive a named stream via repro.sim.rng.make_rng(seed, stream) "
        "so runs are reproducible",
    ),
    "DET301": (
        "iteration over an unordered set/dict-keys union",
        "wrap the union in sorted(...) so marshalled bytes, merge "
        "results, and event orderings are identical across runs",
    ),
    # -- whole-program effect analysis (repro.lint.effects) ----------------
    "EFF101": (
        "layer-contract violation: a contracted layer reaches a "
        "forbidden effect",
        "keep the sim/core layers pure — route the effect through the "
        "simulator clock / seeded RNG, or move the code out of the "
        "contracted layer; sanctioned escapes go in "
        "lint-effects-baseline.txt with a justification",
    ),
    "EFF201": (
        "replay entry point (QRPC handler or compaction rule) reaches "
        "a replay-impure effect",
        "replayed functions must be deterministic and idempotent: no "
        "clock, RNG, real I/O, durable log writes, or global mutation "
        "anywhere in their call tree",
    ),
    "EFF301": (
        "marshal path iterates an unordered container",
        "bytes-on-wire must not depend on the hash salt; sort the "
        "iteration or marshal an ordered structure",
    ),
    "EFF901": (
        "stale baseline entry: no current finding matches it",
        "delete the line from lint-effects-baseline.txt; the escape it "
        "sanctioned no longer exists",
    ),
    "SUP001": (
        "stale suppression: a lint-ignore comment silences nothing",
        "remove the comment (or narrow its rule list); stale "
        "suppressions hide future regressions",
    ),
}


def rule_summary(rule: str) -> str:
    return RULES.get(rule, ("unknown rule", ""))[0]


def rule_hint(rule: str) -> str:
    return RULES.get(rule, ("", ""))[1]
