"""``python -m repro.obs.fleet`` — run a fleet scenario and report health.

Examples::

    # 200 clients, 10 simulated minutes, fleet summary + worst clients
    python -m repro.obs.fleet --clients 200

    # per-window timeline and Prometheus exposition
    python -m repro.obs.fleet --clients 100 --timeline --prometheus

    # chaos variant, JSONL rollups to a file, custom SLO rules
    python -m repro.obs.fleet --chaos --jsonl-out /tmp/fleet.jsonl \\
        --slo "p99 qrpc_latency_seconds <= 300" \\
        --slo "ratio qrpc_failed_total sched_delivered_total <= 0.01"
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.bench.tables import format_table
from repro.obs.fleet.expo import render_prometheus, write_fleet_jsonl
from repro.obs.fleet.sim import FleetScenario, run_fleet
from repro.obs.fleet.slo import DEFAULT_SLO_RULES, parse_rules


def _fmt_pct(value: float) -> str:
    return f"{100.0 * value:.1f}%"


def _fmt_s(value: float) -> str:
    return f"{value:.3f}s" if value else "-"


def summary_section(result) -> str:
    rows = [[k, v] for k, v in sorted(result.summary().items())]
    return format_table("fleet summary", ["field", "value"], rows)


def worst_section(result, k: int) -> str:
    rows = []
    for entry in result.aggregator.worst_clients(k):
        state = result.aggregator.clients[entry.client]
        rows.append([
            entry.client,
            state.link_class or "?",
            "no" if entry.healthy else "YES",
            _fmt_pct(entry.delivery_rate),
            _fmt_pct(entry.retransmit_ratio),
            _fmt_s(entry.rtt_p95),
            _fmt_s(entry.rtt_p99),
            "; ".join(entry.violations) or ("silent" if entry.silent else ""),
        ])
    return format_table(
        f"top-{k} worst clients",
        ["client", "link", "unhealthy", "delivery", "retrans",
         "rtt p95", "rtt p99", "violations"],
        rows,
    )


def timeline_section(result) -> str:
    rows = []
    for window in result.aggregator.ring.windows():
        delivered = sum(
            v for k, v in window.counters.items()
            if k.startswith("sched_delivered_total")
        )
        failed = sum(
            v for k, v in window.counters.items()
            if k.startswith("qrpc_failed_total")
        )
        links = ",".join(
            f"{link}:{window.by_link[link]['reports']}"
            for link in sorted(window.by_link)
        )
        rows.append([
            window.index,
            f"{window.start:.0f}-{window.end:.0f}s",
            window.reports,
            len(window.clients),
            delivered,
            failed,
            links,
        ])
    return format_table(
        "per-window timeline",
        ["win", "span", "reports", "clients", "delivered", "failed",
         "reports/link"],
        rows,
    )


def events_section(result) -> str:
    rows = [
        [f"{e.at:.1f}s", e.client or "(fleet)", e.kind, e.detail]
        for e in result.aggregator.events
    ]
    if not rows:
        return "(no health events)"
    return format_table(
        "health events", ["at", "client", "kind", "detail"], rows
    )


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.fleet",
        description="Simulate a Rover client fleet and report its health.",
    )
    parser.add_argument("--clients", type=int, default=100)
    parser.add_argument("--horizon", type=float, default=600.0,
                        help="simulated seconds of foreground workload")
    parser.add_argument("--interval", type=float, default=60.0,
                        help="telemetry report interval (simulated s)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--chaos", action="store_true",
                        help="inject link faults and a server outage")
    parser.add_argument("--worst", type=int, default=10, metavar="K",
                        help="how many worst clients to list")
    parser.add_argument("--timeline", action="store_true",
                        help="print the per-window timeline")
    parser.add_argument("--events", action="store_true",
                        help="print recorded health events")
    parser.add_argument("--prometheus", action="store_true",
                        help="print the serving registry in Prometheus text")
    parser.add_argument("--jsonl-out", metavar="PATH",
                        help="write rollups as JSONL rows to PATH")
    parser.add_argument("--slo", action="append", default=[], metavar="RULE",
                        help="SLO rule (repeatable); replaces the defaults")
    args = parser.parse_args(argv)

    rules = (
        tuple(r.text for r in parse_rules(args.slo))
        if args.slo
        else DEFAULT_SLO_RULES
    )
    scenario = FleetScenario(
        n_clients=args.clients,
        seed=args.seed,
        horizon_s=args.horizon,
        report_interval_s=args.interval,
        chaos=args.chaos,
        slo=rules,
    )
    result = run_fleet(scenario)

    sections = [summary_section(result), worst_section(result, args.worst)]
    if args.timeline:
        sections.append(timeline_section(result))
    if args.events:
        sections.append(events_section(result))
    print("\n\n".join(sections))
    if args.prometheus:
        print()
        sys.stdout.write(render_prometheus(result.bed.obs.registry))
    if args.jsonl_out:
        with open(args.jsonl_out, "w") as out:
            count = write_fleet_jsonl(result.aggregator, out)
        print(f"\nwrote {count} rows to {args.jsonl_out}")
    if not result.exact:
        print(
            f"WARNING: aggregated totals diverged for "
            f"{len(result.mismatched_clients)} client(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
