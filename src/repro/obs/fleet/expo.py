"""Text exposition and JSONL export for fleet telemetry.

Two consumers, two formats:

* :func:`render_prometheus` — Prometheus-style plain text over any
  :class:`~repro.obs.metrics.MetricsRegistry` (``# HELP``/``# TYPE``
  headers, ``_bucket{le=...}``/``_sum``/``_count`` for histograms).
  Point it at the serving host's registry and the ``fleet_*`` series
  appear next to the server's own metrics.
* :func:`fleet_rows` / :func:`write_fleet_jsonl` — the aggregator's
  rollups as JSON rows (``kind``: ``summary`` / ``client`` /
  ``window`` / ``event``), one per line, for offline analysis.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, TextIO

from repro.obs.metrics import (
    HistogramChild,
    MetricsRegistry,
    format_series,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.fleet.aggregator import FleetAggregator


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    for metric in sorted(registry.metrics(), key=lambda m: m.name):
        children = sorted(metric.children())
        if not children:
            continue
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for labelvalues, child in children:
            series = format_series(metric.name, metric.labelnames, labelvalues)
            if isinstance(child, HistogramChild):
                base, brace, label_body = series.partition("{")
                label_body = label_body[:-1] if brace else ""
                cumulative = 0
                for bound, count in zip(child.buckets, child.bucket_counts):
                    cumulative += count
                    le = _fmt(bound)
                    extra = f"{label_body}," if label_body else ""
                    lines.append(
                        f'{base}_bucket{{{extra}le="{le}"}} {cumulative}'
                    )
                extra = f"{label_body}," if label_body else ""
                lines.append(
                    f'{base}_bucket{{{extra}le="+Inf"}} {child.count}'
                )
                suffix = f"{{{label_body}}}" if label_body else ""
                lines.append(f"{base}_sum{suffix} {_fmt(child.sum)}")
                lines.append(f"{base}_count{suffix} {child.count}")
            else:
                lines.append(f"{series} {_fmt(child.value)}")  # type: ignore[attr-defined]
    return "\n".join(lines) + ("\n" if lines else "")


def fleet_rows(aggregator: "FleetAggregator") -> list[dict]:
    """The aggregator's state as flat JSON-serialisable rows."""
    rows: list[dict] = [{"kind": "summary", **aggregator.summary()}]
    health = aggregator.health()
    for client in sorted(aggregator.clients):
        state = aggregator.clients[client]
        row = {
            "kind": "client",
            "client": client,
            "link": state.link_class,
            "reports": state.reports_applied,
            "duplicates": state.duplicates,
            "floor": state.floor,
            "missing": state.missing(),
            "totals": {key: state.totals[key] for key in sorted(state.totals)},
        }
        entry = health.get(client)
        if entry is not None:
            row["healthy"] = entry.healthy
            row["violations"] = list(entry.violations)
            row["rtt_p95"] = entry.rtt_p95
            row["delivery_rate"] = entry.delivery_rate
        rows.append(row)
    for window in aggregator.ring.windows():
        rows.append({
            "kind": "window",
            "index": window.index,
            "start": window.start,
            "end": window.end,
            "reports": window.reports,
            "clients": len(window.clients),
            "by_link": {
                link: dict(window.by_link[link])
                for link in sorted(window.by_link)
            },
        })
    for event in aggregator.events:
        rows.append({"kind": "event", **event.as_row()})
    return rows


def write_fleet_jsonl(aggregator: "FleetAggregator", out: TextIO) -> int:
    """Write :func:`fleet_rows` one JSON object per line; row count."""
    rows = fleet_rows(aggregator)
    for row in rows:
        out.write(json.dumps(row, sort_keys=True) + "\n")
    return len(rows)
