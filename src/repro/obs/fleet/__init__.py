"""Fleet telemetry: metric shipping, aggregation, and SLO health.

``repro.obs`` (the local Observatory) sees one process; this package
sees the fleet.  It *dogfoods the toolkit*: every client periodically
folds its local metric registry into a compact delta report and ships
it as a background-priority QRPC through its own
:class:`~repro.core.access_manager.AccessManager` — so telemetry rides
the operation log (surviving crashes and disconnection), drains behind
foreground traffic, and successive undelivered reports fold into one
through a compaction pair rule (:class:`TelemetryFold`).  The serving
tier runs a :class:`FleetAggregator` that applies reports idempotently
by ``(client, seq)``, keeps time-windowed rollups in bounded ring
buffers, and derives per-client link quality, SLO conformance, and
health events.

Pieces:

* :mod:`repro.obs.fleet.sketch` — :class:`LogSketch`, the mergeable
  log-bucketed histogram summary reports carry on the wire;
* :mod:`repro.obs.fleet.report` — :class:`TelemetryReporter` (client
  side) and :class:`TelemetryFold` (compaction rule);
* :mod:`repro.obs.fleet.aggregator` — :class:`FleetAggregator`,
  :class:`WindowRing`;
* :mod:`repro.obs.fleet.slo` — declarative :class:`SLORule` parsing
  and evaluation, :class:`HealthEvent`;
* :mod:`repro.obs.fleet.admin` — the read-only fleet-health RDO;
* :mod:`repro.obs.fleet.expo` — Prometheus-style text exposition and
  JSONL export;
* :mod:`repro.obs.fleet.sim` — :class:`FleetScenario`, the 1k-client
  simulation behind benchmark E15 and the CLI;
* ``python -m repro.obs.fleet`` — fleet summary table, top-K worst
  clients, per-window timeline.
"""

from __future__ import annotations

from repro.obs.fleet.aggregator import FleetAggregator, WindowRing
from repro.obs.fleet.report import TelemetryFold, TelemetryReporter, fold_reports
from repro.obs.fleet.sketch import LogSketch
from repro.obs.fleet.slo import DEFAULT_SLO_RULES, HealthEvent, SLORule

__all__ = [
    "DEFAULT_SLO_RULES",
    "FleetAggregator",
    "HealthEvent",
    "LogSketch",
    "SLORule",
    "TelemetryFold",
    "TelemetryReporter",
    "WindowRing",
    "fold_reports",
]
