"""The fleet simulation behind benchmark E15 and the fleet CLI.

One serving host, N mobile clients over a mixed link population
(Ethernet / WaveLAN / 14.4K CSLIP / 2.4K CSLIP, the paper's four
links; the slowest class also cycles through disconnection so queued
reports exercise the fold rule).  Every client runs a small foreground
workload (imports plus remote invokes against its own server object)
and, when telemetry is on, a :class:`TelemetryReporter` shipping its
private registry to the :class:`FleetAggregator`.

Two properties this scenario exists to measure, both E15 acceptance
criteria:

* **overhead** — within the telemetry run, every dispatched request
  body is attributed to its service by the scheduler
  (``sched_service_bytes_total``) and every telemetry ack is measured
  by the aggregator, so the telemetry tax is (telemetry requests +
  replies) over the remaining foreground wire bytes (must stay ≤ 5%).
  A clean control run with the same seed is kept as reference, but the
  raw A/B wire delta is *not* the tax: on links that cycle through
  disconnection, shifting transmission timing by microseconds moves
  foreground messages across up/down boundaries and perturbs re-sends
  by far more than the telemetry bytes themselves;
* **exactness** — at the horizon every client captures its ground
  truth and flushes *in the same simulated instant*; after the drain,
  the aggregator's per-client counter totals must equal the ground
  truth exactly — under duplication, reordering, folding, and (in the
  chaos variant) link faults plus a server outage.

The aggregator object itself survives the simulated server outage:
its rollups model state the serving tier keeps durable, while the
outage still kills in-flight telemetry exchanges (recovered by
retransmission and same-seq re-ship).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.chaos.controller import ChaosController
from repro.chaos.faults import LinkFaultSpec
from repro.chaos.plan import FaultPlan, LinkFaultWindow, ServerOutage
from repro.core.naming import URN
from repro.core.rdo import RDO, MethodSpec, RDOInterface
from repro.net.link import (
    CSLIP_2_4,
    CSLIP_14_4,
    ETHERNET_10M,
    WAVELAN_2M,
    LinkSpec,
    PeriodicSchedule,
)
from repro.obs.fleet.aggregator import FleetAggregator
from repro.obs.fleet.report import TelemetryReporter
from repro.obs.fleet.slo import DEFAULT_SLO_RULES
from repro.testbed import MultiClientTestbed, build_multi_client_testbed

#: The mixed link population: client ``i`` gets ``MIX[i % 4]``.
LINK_MIX: tuple[LinkSpec, ...] = (
    ETHERNET_10M,
    WAVELAN_2M,
    CSLIP_14_4,
    CSLIP_2_4,
)

_PING_CODE = '''
def ping(state):
    return state["n"]

def bump(state):
    state["n"] = state["n"] + 1
    return state["n"]

def echo(state, blob):
    return blob
'''

_PING_INTERFACE = RDOInterface(
    [
        MethodSpec("ping", doc="read the counter"),
        MethodSpec("bump", mutates=True, doc="advance the counter"),
        MethodSpec("echo", doc="round-trip a payload (foreground load)"),
    ]
)

#: Foreground payload divisor per :data:`LINK_MIX` position — slow
#: links carry proportionally lighter application payloads, the way a
#: real mobile app adapts fidelity to bandwidth (cf. the paper's
#: CSLIP-aware Exmh/proxy behaviour).
_PAYLOAD_DIVISOR = (1, 1, 8, 16)


@dataclass(frozen=True)
class FleetScenario:
    """One reproducible fleet run (frozen: a scenario plus nothing)."""

    n_clients: int = 1000
    seed: int = 0
    #: Foreground workload + reporting stop here; the run then drains.
    horizon_s: float = 600.0
    report_interval_s: float = 60.0
    #: Remote invokes each client spreads over the horizon.
    invokes_per_client: int = 16
    #: Echo payload for fast-link clients; slower classes carry
    #: ``payload_bytes // _PAYLOAD_DIVISOR[class]``.
    payload_bytes: int = 8192
    telemetry: bool = True
    chaos: bool = False
    window_s: float = 60.0
    window_count: int = 64
    silent_after_s: float = 300.0
    authority: str = "fleet"
    slo: tuple = DEFAULT_SLO_RULES
    #: Extra simulated time allowed for queued telemetry to drain.
    drain_s: float = 1800.0


@dataclass
class FleetResult:
    """What one run produced."""

    scenario: FleetScenario
    bed: MultiClientTestbed
    aggregator: Optional[FleetAggregator]
    reporters: list[TelemetryReporter]
    wire_bytes: int = 0
    duration_s: float = 0.0
    reports_sent: int = 0
    reports_acked: int = 0
    reports_reshipped: int = 0
    #: Dispatched request-body bytes attributed by service (from the
    #: per-client ``sched_service_bytes_total`` counters).
    telemetry_request_bytes: int = 0
    foreground_request_bytes: int = 0
    #: Marshalled telemetry ack bytes, measured by the aggregator.
    telemetry_reply_bytes: int = 0
    exact: bool = True
    mismatched_clients: list = field(default_factory=list)
    ground_truth: dict = field(default_factory=dict)

    @property
    def telemetry_bytes(self) -> int:
        """Total wire bytes attributed to telemetry (requests + acks)."""
        return self.telemetry_request_bytes + self.telemetry_reply_bytes

    @property
    def foreground_bytes(self) -> int:
        """Everything the links carried that wasn't telemetry."""
        return max(0, self.wire_bytes - self.telemetry_bytes)

    @property
    def overhead_pct(self) -> float:
        """Telemetry bytes as a percentage of foreground wire bytes."""
        if not self.foreground_bytes:
            return 0.0
        return 100.0 * self.telemetry_bytes / self.foreground_bytes

    def summary(self) -> dict:
        out = {
            "clients": self.scenario.n_clients,
            "wire_bytes": self.wire_bytes,
            "duration_s": self.duration_s,
            "reports_sent": self.reports_sent,
            "reports_acked": self.reports_acked,
            "reports_reshipped": self.reports_reshipped,
            "exact": self.exact,
            "mismatched_clients": len(self.mismatched_clients),
        }
        if self.aggregator is not None:
            out["telemetry_bytes"] = self.telemetry_bytes
            out["overhead_pct"] = round(self.overhead_pct, 3)
            out.update(self.aggregator.summary())
        return out


def chaos_plan(scenario: FleetScenario) -> FaultPlan:
    """The E15 chaos variant: lossy windows plus one server outage.

    No client crashes here — those are covered by the dedicated chaos
    tests (client recovery rebuilds the access manager, which a
    benchmark loop shouldn't pay for a thousand times).
    """
    third = scenario.horizon_s / 3.0
    return FaultPlan(
        seed=scenario.seed,
        server_outages=(
            ServerOutage(at=third * 2.0, down_for=scenario.horizon_s / 10.0),
        ),
        link_windows=(
            LinkFaultWindow(
                spec=LinkFaultSpec(drop=0.05, reorder=0.05, duplicate=0.02),
                start=third * 0.5,
                end=third * 1.5,
            ),
        ),
    )


def build_fleet(scenario: FleetScenario) -> FleetResult:
    """Wire the testbed, aggregator, reporters, and workload events."""
    policies = []
    for index in range(scenario.n_clients):
        spec = LINK_MIX[index % len(LINK_MIX)]
        if spec is CSLIP_2_4:
            # The slowest class also disconnects: down longer than the
            # report interval, so queued reports pile up and fold.
            policies.append(PeriodicSchedule(
                up_duration=scenario.horizon_s / 4.0,
                down_duration=scenario.report_interval_s * 2.5,
                phase=(index % 7) * scenario.report_interval_s / 7.0,
            ))
        else:
            policies.append(None)
    bed = build_multi_client_testbed(
        scenario.n_clients,
        link_specs=list(LINK_MIX),
        policies=policies,
        authority=scenario.authority,
        seed=scenario.seed,
        per_client_obs=True,
    )
    for index, stack in enumerate(bed.clients):
        urn = URN(scenario.authority, f"obj/{index}")
        bed.server.put_object(
            RDO(urn, "fleet-ping", {"n": 0}, code=_PING_CODE,
                interface=_PING_INTERFACE),
            # Verify the shared code once; re-checking an identical
            # string per client would be pure constant-factor cost.
            verify=(index == 0),
        )

    aggregator: Optional[FleetAggregator] = None
    reporters: list[TelemetryReporter] = []
    if scenario.telemetry:
        aggregator = FleetAggregator(
            bed.sim,
            obs=bed.obs,
            server=bed.server,
            window_s=scenario.window_s,
            window_count=scenario.window_count,
            slo_rules=list(scenario.slo),
            silent_after_s=scenario.silent_after_s,
        )
        aggregator.register(bed.server_transport)
        for index, stack in enumerate(bed.clients):
            reporter = TelemetryReporter(
                stack.access,
                scenario.authority,
                obs=stack.obs,
                interval_s=scenario.report_interval_s,
                link_class=LINK_MIX[index % len(LINK_MIX)].name,
            )
            # Golden-ratio stagger: deterministic, and spreads report
            # instants nearly uniformly so the server never sees a
            # thundering herd at interval boundaries.
            stagger = (index * 0.6180339887498949 % 1.0)
            reporter.start(stagger_s=stagger * scenario.report_interval_s)
            reporters.append(reporter)

    for index, stack in enumerate(bed.clients):
        urn = f"urn:rover:{scenario.authority}/obj/{index}"
        start = (index % 23) * (scenario.horizon_s / (23 * 4.0))
        bed.sim.schedule_at(
            start, lambda s=stack, u=urn: s.access.import_(u)
        )
        gap = scenario.horizon_s / (scenario.invokes_per_client + 1)
        divisor = _PAYLOAD_DIVISOR[index % len(LINK_MIX)]
        blob = "x" * max(1, scenario.payload_bytes // divisor)
        for step in range(scenario.invokes_per_client):
            if step % 4 == 0:
                method, args = "bump", []
            else:
                method, args = "echo", [blob]
            bed.sim.schedule_at(
                start + (step + 1) * gap,
                lambda s=stack, u=urn, m=method, a=args: (
                    s.access.invoke_remote(u, m, a)
                ),
            )
    return FleetResult(
        scenario=scenario, bed=bed, aggregator=aggregator,
        reporters=reporters,
    )


def _service_request_bytes(bed: MultiClientTestbed) -> tuple[int, int]:
    """(telemetry, foreground) request-body bytes across all clients.

    Every client scheduler attributes each dispatched request's
    marshalled body to its service in ``sched_service_bytes_total``
    (retransmissions re-count — they are real wire bytes).
    """
    telemetry = 0
    foreground = 0
    for stack in bed.clients:
        if stack.obs is None:
            continue
        metric = stack.obs.registry.get("sched_service_bytes_total")
        if metric is None:
            continue
        for key, child in metric.children():
            service = key[metric.labelnames.index("service")]
            if service == "rover.telemetry":
                telemetry += int(child.value)
            else:
                foreground += int(child.value)
    return telemetry, foreground


def run_fleet(scenario: FleetScenario) -> FleetResult:
    """Build and run one scenario to its horizon, then drain and check."""
    result = build_fleet(scenario)
    bed, reporters = result.bed, result.reporters

    if scenario.chaos:
        controller = ChaosController(bed.sim, obs=bed.obs, seed=scenario.seed)
        controller.schedule(chaos_plan(scenario), bed)

    def finale() -> None:
        # Ground truth and the final flush happen in this one event,
        # before the flush's own log/scheduler work can bump counters:
        # exactness is defined at this instant.  Periodic ticks stop
        # first — a report built during the drain would ship counter
        # bumps from delivering telemetry itself, past the truth.
        for index, reporter in enumerate(reporters):
            reporter.stop()
            result.ground_truth[bed.clients[index].host.name] = (
                reporter.ground_truth()
            )
            reporter.flush()

    bed.sim.schedule_at(scenario.horizon_s, finale)
    bed.sim.run(until=scenario.horizon_s + 0.000001)

    # Drain: run until every report is acked (or the budget runs out —
    # the 2.4K class spends most of each cycle disconnected).
    deadline = scenario.horizon_s + scenario.drain_s
    while bed.sim.now < deadline:
        if all(not reporter._unacked for reporter in reporters):
            break
        bed.sim.run(until=min(deadline, bed.sim.now + 30.0))
    bed.sim.run(until=bed.sim.now + 5.0)  # let final acks land

    result.duration_s = bed.sim.now
    result.wire_bytes = sum(stack.link.bytes_carried for stack in bed.clients)
    tel_req, fg_req = _service_request_bytes(bed)
    result.telemetry_request_bytes = tel_req
    result.foreground_request_bytes = fg_req
    if result.aggregator is not None:
        result.telemetry_reply_bytes = result.aggregator.reply_bytes()
    result.reports_sent = sum(r.reports_sent for r in reporters)
    result.reports_acked = sum(r.reports_acked for r in reporters)
    result.reports_reshipped = sum(r.reports_reshipped for r in reporters)

    if result.aggregator is not None:
        for index, stack in enumerate(bed.clients):
            client = stack.host.name
            expected = result.ground_truth.get(client, {})
            got = result.aggregator.client_totals(client)
            if got != expected:
                result.exact = False
                result.mismatched_clients.append(client)
        # Evaluate health as of the horizon: the drain that follows it
        # is bookkeeping, not fleet time, and would mark every client
        # silent.
        result.aggregator.evaluate_health(now=scenario.horizon_s)
    return result


@dataclass
class OverheadResult:
    """A clean/telemetry scenario pair and the derived overhead.

    The gate metric is the telemetry run's *attributed* overhead:
    telemetry request+ack bytes over the run's remaining foreground
    wire bytes.  The clean control is kept for reference — its raw
    wire delta (:attr:`ab_delta_bytes`) confounds the telemetry tax
    with timing-shifted foreground re-sends on cycling links, so it
    bounds nothing by itself.
    """

    clean: FleetResult
    telemetry: FleetResult
    chaos: Optional[FleetResult] = None

    @property
    def foreground_bytes(self) -> int:
        return self.telemetry.foreground_bytes

    @property
    def telemetry_bytes(self) -> int:
        return self.telemetry.telemetry_bytes

    @property
    def overhead_pct(self) -> float:
        return self.telemetry.overhead_pct

    @property
    def ab_delta_bytes(self) -> int:
        """Reference only: raw wire delta between the paired runs."""
        return self.telemetry.wire_bytes - self.clean.wire_bytes


def run_overhead(
    scenario: FleetScenario, with_chaos: bool = False
) -> OverheadResult:
    """Run the clean control, the telemetry run, and optionally chaos."""
    from dataclasses import replace

    clean = run_fleet(replace(scenario, telemetry=False, chaos=False))
    telemetry = run_fleet(replace(scenario, telemetry=True, chaos=False))
    chaos = (
        run_fleet(replace(scenario, telemetry=True, chaos=True))
        if with_chaos
        else None
    )
    return OverheadResult(clean=clean, telemetry=telemetry, chaos=chaos)
