"""The read-only fleet-health admin RDO.

The future control plane should query fleet health *through the
toolkit*, not through a side channel: this module publishes the
aggregator's current health evaluation as a plain-data RDO at
``urn:rover:<authority>/__fleet__/health``.  Any client can then
``import_`` it (cacheable, disconnection-tolerant) or
``invoke_remote`` its methods; every method is ``mutates=False`` so
an import never turns tentative and compaction can absorb repeated
refreshes.

The RDO's state is a snapshot — :func:`publish_health` re-renders and
re-publishes it (bumping the object version) whenever the operator or
a periodic server task wants fresher data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.naming import URN
from repro.core.rdo import RDO, MethodSpec, RDOInterface

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.server import RoverServer
    from repro.obs.fleet.aggregator import FleetAggregator

FLEET_HEALTH_TYPE = "fleet-health"
FLEET_HEALTH_PATH = "__fleet__/health"

FLEET_HEALTH_CODE = '''
def summary(state):
    return state["summary"]

def clients(state):
    names = []
    for row in state["clients"]:
        names.append(row["client"])
    return names

def client(state, name):
    for row in state["clients"]:
        if row["client"] == name:
            return row
    return None

def unhealthy(state):
    result = []
    for row in state["clients"]:
        if not row["healthy"]:
            result.append(row)
    return result

def worst(state, k):
    result = []
    for row in state["worst"]:
        if len(result) >= k:
            break
        result.append(row)
    return result

def events(state):
    return state["events"]

def generated_at(state):
    return state["at"]
'''

FLEET_HEALTH_INTERFACE = RDOInterface(
    [
        MethodSpec("summary", doc="fleet-wide counters"),
        MethodSpec("clients", doc="reporting client names"),
        MethodSpec("client", doc="one client's health row, or None"),
        MethodSpec("unhealthy", doc="rows currently violating an SLO"),
        MethodSpec("worst", doc="the k most-broken clients, worst first"),
        MethodSpec("events", doc="recent health transitions"),
        MethodSpec("generated_at", doc="snapshot time (simulated seconds)"),
    ]
)


def health_state(aggregator: "FleetAggregator", worst_k: int = 10) -> dict:
    """Render the aggregator's last health evaluation as plain data."""
    rows = []
    for client in sorted(aggregator.health()):
        entry = aggregator.health()[client]
        rows.append({
            "client": entry.client,
            "healthy": entry.healthy,
            "silent": entry.silent,
            "violations": list(entry.violations),
            "delivery_rate": entry.delivery_rate,
            "retransmit_ratio": entry.retransmit_ratio,
            "rtt_p50": entry.rtt_p50,
            "rtt_p95": entry.rtt_p95,
            "rtt_p99": entry.rtt_p99,
            "link": aggregator.clients[client].link_class,
            "reports": aggregator.clients[client].reports_applied,
        })
    return {
        "at": aggregator.sim.now,
        "summary": aggregator.summary(),
        "clients": rows,
        "worst": [
            {"client": h.client, "violations": list(h.violations)}
            for h in aggregator.worst_clients(worst_k)
        ],
        "events": [event.as_row() for event in aggregator.events],
    }


def publish_health(
    aggregator: "FleetAggregator",
    server: "RoverServer",
    worst_k: int = 10,
    evaluate: bool = True,
) -> RDO:
    """(Re)evaluate health and publish/refresh the admin RDO."""
    if evaluate:
        aggregator.evaluate_health()
    urn = URN(server.authority, FLEET_HEALTH_PATH)
    existing: Optional[RDO] = server.get_object(str(urn))
    version = existing.version + 1 if existing is not None else 1
    rdo = RDO(
        urn,
        FLEET_HEALTH_TYPE,
        health_state(aggregator, worst_k),
        code=FLEET_HEALTH_CODE,
        interface=FLEET_HEALTH_INTERFACE,
        version=version,
    )
    server.put_object(rdo)
    return rdo
