"""Client side of fleet telemetry: delta reports and the fold rule.

A :class:`TelemetryReporter` periodically folds its client's local
metric registry into a **delta report** and ships it through the
client's own :class:`~repro.core.access_manager.AccessManager` as an
:attr:`~repro.core.qrpc.Operation.TELEMETRY` QRPC at background
priority.  The report carries:

* integer **counter deltas** since the previous report (counters in
  this codebase only ever step by integers, so delta totals telescope
  exactly at the aggregator — the property benchmark E15 checks);
* mergeable **log-bucketed sketches** (:class:`LogSketch`) over the
  histogram observations recorded since the previous report;
* current **gauge values** (later reports simply win);
* a **monotonic sequence number** ``q`` so the aggregator can apply
  reports idempotently and out of order.

Series names are dictionary-coded: the first report using a series
ships a ``[id, name]`` definition and later reports carry only the
small integer id.  Labels whose value equals the client's own host
name are stripped (the aggregator re-qualifies every series by the
reporting client), which is what makes series comparable across the
fleet.

Because reports ride the operation log, a disconnected client piles
queued reports up.  :class:`TelemetryFold` is a compaction
:class:`~repro.perf.compact.PairRule` that folds two adjacent
undelivered reports into one — deltas add, sketches merge, later
gauges win — and records the folded-away sequence numbers in ``f`` so
the aggregator does not mistake them for losses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.promise import Promise
from repro.core.qrpc import Operation, QRPCRequest
from repro.net.scheduler import Priority
from repro.obs import Observatory
from repro.obs.fleet.sketch import LogSketch
from repro.obs.metrics import (
    CounterChild,
    GaugeChild,
    HistogramChild,
    format_series,
)
from repro.perf.compact import Merge, PairRule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.access_manager import AccessManager

#: Telemetry report wire-format version.
WIRE_VERSION = 1


def telemetry_urn(authority: str) -> str:
    """The per-client pseudo-URN telemetry reports queue under.

    All of one client's reports share it, which is what makes them
    adjacent in the per-URN compaction subsequence.
    """
    return f"urn:rover:{authority}/__telemetry__"


class TelemetryFold(PairRule):
    """Fold two adjacent undelivered telemetry reports into one.

    Refuses to touch a re-shipped report (``r`` flag): a retry reuses
    its original sequence number for an operation the server *may*
    have partially seen, so folding it under a new seq could
    double-count if the first copy did land.
    """

    def match(self, earlier: QRPCRequest, later: QRPCRequest):
        if (
            earlier.operation is not Operation.TELEMETRY
            or later.operation is not Operation.TELEMETRY
        ):
            return None
        a, b = earlier.args, later.args
        if "r" in a or "r" in b:
            return None
        if a.get("c") != b.get("c"):
            return None
        return Merge(fold_reports(a, b))


def fold_reports(a: dict, b: dict) -> dict:
    """Merge report ``a`` (earlier) into ``b`` (later): the combined args.

    Counter deltas add, sketches merge, the later report's gauges win,
    definitions union (``b``'s name wins on an id collision, which
    cannot happen for one well-behaved reporter), and the survivor's
    ``f`` list records every sequence number the fold covered.
    """
    out = {
        "v": b.get("v", WIRE_VERSION),
        "c": b["c"],
        "q": b["q"],
        "t0": min(a.get("t0", b["t0"]), b["t0"]),
        "t1": b["t1"],
    }
    if b.get("l"):
        out["l"] = b["l"]
    covers = sorted(
        set(a.get("f", [])) | set(b.get("f", [])) | {int(a["q"])}
    )
    out["f"] = covers

    defs = {int(i): name for i, name in a.get("d", [])}
    defs.update({int(i): name for i, name in b.get("d", [])})
    if defs:
        out["d"] = [[i, defs[i]] for i in sorted(defs)]

    counters = {int(i): int(v) for i, v in a.get("k", [])}
    for i, v in b.get("k", []):
        counters[int(i)] = counters.get(int(i), 0) + int(v)
    if counters:
        out["k"] = [[i, counters[i]] for i in sorted(counters)]

    gauges = {int(i): v for i, v in a.get("g", [])}
    gauges.update({int(i): v for i, v in b.get("g", [])})
    if gauges:
        out["g"] = [[i, gauges[i]] for i in sorted(gauges)]

    sketches = {int(i): wire for i, wire in a.get("h", [])}
    for i, wire in b.get("h", []):
        prev = sketches.get(int(i))
        sketches[int(i)] = (
            wire if prev is None else LogSketch.merge_wire(prev, wire)
        )
    if sketches:
        out["h"] = [[i, sketches[i]] for i in sorted(sketches)]
    return out


class TelemetryReporter:
    """Periodically ship one client's metric registry as delta reports.

    The reporter's cursors (sequence number, per-series shipped
    offsets, the id dictionary) model state the client would keep on
    stable storage; they survive :meth:`attach` across a simulated
    crash, while delivery of already-logged reports is owned by the
    operation log's replay.
    """

    def __init__(
        self,
        access: "AccessManager",
        authority: str,
        obs: Optional[Observatory] = None,
        interval_s: float = 30.0,
        link_class: str = "",
        priority: Priority = Priority.BACKGROUND,
        install_fold_rule: bool = True,
        include_gauges: bool = False,
    ) -> None:
        self.access = access
        self.authority = authority
        self.obs = obs if obs is not None else access.obs
        self.interval_s = float(interval_s)
        self.link_class = link_class
        self.priority = priority
        #: Gauges are point-in-time values of marginal fleet use (the
        #: health layer runs on counters and sketches), so shipping
        #: them is opt-in wire cost.
        self.include_gauges = include_gauges
        self.client = access.host.name
        self._seq = 0
        #: Cumulative counter value already shipped, per series key.
        self._counter_last: dict[str, int] = {}
        #: Raw histogram observations already consumed, per series key.
        self._hist_consumed: dict[str, int] = {}
        #: Last shipped gauge value, per series key.
        self._gauge_last: dict[str, float] = {}
        self._ids: dict[str, int] = {}
        self._next_id = 1
        #: Ids whose definition rode a report that was acked.
        self._defined: set[int] = set()
        #: seq -> shipped payload, for same-seq re-ship after terminal
        #: failure.  Cleared on :meth:`attach` (log replay takes over).
        self._unacked: dict[int, dict] = {}
        #: Guards promise callbacks across crash/attach cycles (an old
        #: incarnation's ack must not mutate the rebuilt state).
        self._epoch = 0
        #: Guards scheduled ticks; also bumped by :meth:`stop`, which
        #: must cancel future ticks *without* invalidating in-flight acks.
        self._tick_epoch = 0
        self._started = False
        self.reports_sent = 0
        self.reports_acked = 0
        self.reports_reshipped = 0
        if install_fold_rule:
            self._ensure_fold_rule()

    # -- lifecycle --------------------------------------------------------------

    def start(self, stagger_s: float = 0.0) -> None:
        """Begin periodic reporting ``stagger_s`` seconds from now."""
        self._started = True
        self.access.sim.schedule(stagger_s, self._tick, self._tick_epoch)

    def stop(self) -> None:
        """Cancel future periodic ticks; in-flight reports still ack."""
        self._started = False
        self._tick_epoch += 1

    def attach(self, access: "AccessManager") -> None:
        """Adopt the access manager a crash recovery rebuilt.

        Reports still queued at the crash are replayed from the stable
        log by the recovery path itself, so pending re-ship state is
        dropped; cursors (seq, shipped offsets) persist — they model
        checkpointed reporter state.
        """
        self.access = access
        self._unacked.clear()
        self._epoch += 1
        self._tick_epoch += 1
        self._ensure_fold_rule()
        if self._started:
            self.access.sim.schedule(self.interval_s, self._tick, self._tick_epoch)

    def _ensure_fold_rule(self) -> None:
        compactor = self.access.compactor
        if compactor is not None and any(
            isinstance(rule, TelemetryFold) for rule in compactor.pair_rules
        ):
            return
        self.access.add_compaction_rule(TelemetryFold())

    def _tick(self, epoch: int) -> None:
        if epoch != self._tick_epoch:
            return
        self.flush()
        self.access.sim.schedule(self.interval_s, self._tick, epoch)

    # -- report construction ----------------------------------------------------

    def _series_key(self, name: str, labelnames, labelvalues) -> str:
        kept_names = []
        kept_values = []
        for ln, lv in zip(labelnames, labelvalues):
            if lv == self.client:
                continue  # the aggregator re-qualifies by client
            kept_names.append(ln)
            kept_values.append(lv)
        return format_series(name, kept_names, kept_values)

    def _id_for(self, key: str, defs: list) -> int:
        wire_id = self._ids.get(key)
        if wire_id is None:
            wire_id = self._next_id
            self._next_id += 1
            self._ids[key] = wire_id
        if wire_id not in self._defined:
            defs.append([wire_id, key])
        return wire_id

    def build_report(self) -> Optional[dict]:
        """Snapshot the registry into a delta report; ``None`` if empty."""
        registry = self.obs.registry
        t1 = self.access.sim.now
        defs: list = []
        counters: list = []
        gauges: list = []
        sketches: list = []
        for metric in sorted(registry.metrics(), key=lambda m: m.name):
            for labelvalues, child in sorted(metric.children()):
                key = self._series_key(metric.name, metric.labelnames, labelvalues)
                if isinstance(child, CounterChild):
                    current = int(child.value)
                    delta = current - self._counter_last.get(key, 0)
                    if delta:
                        self._counter_last[key] = current
                        counters.append([self._id_for(key, defs), delta])
                elif isinstance(child, HistogramChild):
                    raw = child._values
                    start = self._hist_consumed.get(key, 0)
                    if len(raw) > start:
                        sketch = LogSketch()
                        sketch.observe_many(raw[start:])
                        self._hist_consumed[key] = len(raw)
                        sketches.append(
                            [self._id_for(key, defs), sketch.to_wire()]
                        )
                elif self.include_gauges and isinstance(child, GaugeChild):
                    value = child.value
                    if self._gauge_last.get(key) != value:
                        self._gauge_last[key] = value
                        gauges.append([self._id_for(key, defs), value])
        if not (counters or gauges or sketches):
            return None
        self._seq += 1
        t0 = t1 - self.interval_s if self._seq > 1 else 0.0
        report: dict = {
            "v": WIRE_VERSION,
            "c": self.client,
            "q": self._seq,
            "t0": max(0.0, t0),
            "t1": t1,
        }
        if self.link_class:
            report["l"] = self.link_class
        if defs:
            report["d"] = defs
        if counters:
            report["k"] = counters
        if gauges:
            report["g"] = gauges
        if sketches:
            report["h"] = sketches
        return report

    def flush(self) -> Optional[Promise]:
        """Build and queue a report now; ``None`` when nothing changed."""
        report = self.build_report()
        if report is None:
            return None
        return self._ship(report)

    def _ship(self, report: dict) -> Promise:
        seq = int(report["q"])
        self._unacked[seq] = report
        epoch = self._epoch
        promise = self.access.telemetry(
            self.authority, report, priority=self.priority
        )
        self.reports_sent += 1
        promise.then(lambda reply: self._on_ack(epoch, seq, reply))
        promise.on_failure(lambda reason: self._on_failed(epoch, seq))
        return promise

    def _on_ack(self, epoch: int, seq: int, reply: dict) -> None:
        if epoch != self._epoch:
            return
        report = self._unacked.pop(seq, None)
        self.reports_acked += 1
        if report is not None:
            for wire_id, __ in report.get("d", []):
                self._defined.add(int(wire_id))

    def _on_failed(self, epoch: int, seq: int) -> None:
        """Terminal scheduler failure: re-ship the same payload, same seq.

        The retry keeps its original sequence number (idempotent at
        the aggregator if the first copy did land) and is flagged
        ``r`` so the fold rule leaves it alone.
        """
        if epoch != self._epoch:
            return
        report = self._unacked.get(seq)
        if report is None:
            return
        retry = dict(report)
        retry["r"] = 1
        self._unacked[seq] = retry
        self.reports_reshipped += 1
        promise = self.access.telemetry(self.authority, retry, priority=self.priority)
        promise.then(lambda reply: self._on_ack(epoch, seq, reply))
        promise.on_failure(lambda reason: self._on_failed(epoch, seq))

    # -- ground truth for exactness checks --------------------------------------

    def ground_truth(self) -> dict[str, int]:
        """Cumulative integer counters, keyed exactly as shipped.

        Captured in the same simulation instant as a final
        :meth:`flush`, this is what the aggregator's per-client totals
        must equal once every report drains — the E15 exactness check.
        """
        registry = self.obs.registry
        out: dict[str, int] = {}
        for metric in registry.metrics():
            for labelvalues, child in metric.children():
                if not isinstance(child, CounterChild):
                    continue
                current = int(child.value)
                if current:
                    key = self._series_key(
                        metric.name, metric.labelnames, labelvalues
                    )
                    out[key] = out.get(key, 0) + current
        return out
