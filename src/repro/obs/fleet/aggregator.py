"""Server side of fleet telemetry: idempotent aggregation and health.

The :class:`FleetAggregator` registers the ``rover.telemetry`` service
on a serving host and applies incoming delta reports **idempotently by
``(client, seq)``** — a report may arrive twice (retransmission, log
replay after a client crash, same-seq re-ship after a terminal
scheduler failure) or out of order (reorder faults), and must count
exactly once.  Applied-seq state is a *floor + sparse set*: the floor
is the highest seq below which everything has been applied and the set
holds applied seqs above it, so memory stays O(outstanding gaps)
rather than O(reports).  Folded reports declare the seqs they absorbed
in ``f``, which the aggregator marks applied too — a fold is
coalescing, not loss.

Rollups live at three scopes, all bounded:

* **per client** — all-time counter totals, merged sketches, latest
  gauges (one :class:`ClientState` per client);
* **per window** — a :class:`WindowRing` of fixed-width time windows
  holding fleet-wide counter deltas, per-link-class and per-client
  report breakdowns; reports older than the ring's reach count as
  ``late`` instead of resurrecting evicted windows;
* **fleet-wide** — ``fleet_*`` counters/gauges exported through the
  serving host's own metric registry, so the fleet pipeline is
  observable with the same tools it implements.

The derived health layer (:meth:`FleetAggregator.evaluate_health`)
estimates per-client link quality from the shipped series (delivery
rate, retransmit ratio, RTT percentiles off the merged
``qrpc_latency_seconds`` sketch), evaluates the declarative
:class:`~repro.obs.fleet.slo.SLORule` set per client, flags clients
that have gone silent, and records health *transitions* as
:class:`~repro.obs.fleet.slo.HealthEvent` entries.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.net.message import marshalled_size
from repro.obs import Observatory
from repro.obs.fleet.sketch import LogSketch
from repro.obs.fleet.slo import (
    ClientHealth,
    HealthEvent,
    SLORule,
    parse_rules,
)
from repro.sim import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.server import RoverServer
    from repro.net.transport import Transport

#: Reports naming a series id before its definition has arrived (a
#: reorder put the defining report behind) wait here, bounded.
MAX_DEFERRED = 64

#: Pinned per-client/per-link window breakdown families (kept small so
#: a window's footprint is independent of metric cardinality).
_WINDOW_FAMILIES = (
    "sched_delivered_total",
    "sched_retransmissions_total",
    "qrpc_failed_total",
)


def family_of(series: str) -> str:
    """``name{labels}`` -> ``name`` (series key to metric family)."""
    brace = series.find("{")
    return series if brace < 0 else series[:brace]


@dataclass
class Window:
    """One fixed-width time window of fleet activity."""

    index: int
    start: float
    end: float
    reports: int = 0
    clients: set = field(default_factory=set)
    #: Fleet-wide counter deltas landed in this window, by series key.
    counters: dict = field(default_factory=dict)
    #: link class -> {"reports": n, <family>: delta, ...}
    by_link: dict = field(default_factory=dict)
    #: client -> {"reports": n, <family>: delta, ...}
    by_client: dict = field(default_factory=dict)

    def _breakdown(self, table: dict, key: str) -> dict:
        row = table.get(key)
        if row is None:
            row = {"reports": 0}
            table[key] = row
        return row


class WindowRing:
    """A bounded ring of :class:`Window` objects keyed by time.

    Admits any window index within ``capacity`` of the newest seen;
    older indices are refused (the caller counts them as late) and
    windows falling off the back are evicted eagerly.
    """

    def __init__(self, window_s: float, capacity: int) -> None:
        if window_s <= 0 or capacity <= 0:
            raise ValueError("window_s and capacity must be positive")
        self.window_s = float(window_s)
        self.capacity = int(capacity)
        self._windows: dict[int, Window] = {}
        self._hi: Optional[int] = None
        self.evicted = 0

    def slot(self, t: float) -> Optional[Window]:
        """The window containing time ``t``; ``None`` if out of reach."""
        index = int(t // self.window_s)
        if self._hi is not None and index <= self._hi - self.capacity:
            return None
        if self._hi is None or index > self._hi:
            self._hi = max(self._hi or index, index)
            floor = self._hi - self.capacity
            for old in [i for i in self._windows if i <= floor]:
                del self._windows[old]
                self.evicted += 1
        window = self._windows.get(index)
        if window is None:
            window = Window(
                index=index,
                start=index * self.window_s,
                end=(index + 1) * self.window_s,
            )
            self._windows[index] = window
        return window

    def windows(self) -> list[Window]:
        return [self._windows[i] for i in sorted(self._windows)]

    def __len__(self) -> int:
        return len(self._windows)


@dataclass
class ClientState:
    """Everything the aggregator knows about one reporting client."""

    client: str
    floor: int = 0                      # all seqs <= floor applied
    above: set = field(default_factory=set)   # applied seqs > floor
    max_seen: int = 0
    gauge_seq: int = 0                  # newest seq whose gauges won
    link_class: str = ""
    last_report_at: float = 0.0
    reports_applied: int = 0
    duplicates: int = 0
    ids: dict = field(default_factory=dict)       # wire id -> series key
    totals: dict = field(default_factory=dict)    # series key -> int
    gauges: dict = field(default_factory=dict)    # series key -> float
    sketches: dict = field(default_factory=dict)  # series key -> LogSketch

    def is_applied(self, seq: int) -> bool:
        return seq <= self.floor or seq in self.above

    def mark_applied(self, seq: int) -> None:
        if self.is_applied(seq):
            return
        self.above.add(seq)
        while self.floor + 1 in self.above:
            self.floor += 1
            self.above.discard(self.floor)

    def missing(self) -> int:
        """Seqs in ``(floor, max_seen]`` not yet applied (open gap size)."""
        return self.max_seen - self.floor - len(self.above)

    def total_for(self, family: str) -> int:
        return sum(
            v for key, v in self.totals.items() if family_of(key) == family
        )

    def sketch_for(self, family: str) -> LogSketch:
        merged = LogSketch()
        for key, sketch in self.sketches.items():
            if family_of(key) == family:
                merged.merge(sketch)
        return merged


class FleetAggregator:
    """Apply telemetry reports; keep rollups; derive fleet health."""

    def __init__(
        self,
        sim: Simulator,
        obs: Optional[Observatory] = None,
        server: Optional["RoverServer"] = None,
        window_s: float = 60.0,
        window_count: int = 64,
        slo_rules: Optional[list] = None,
        silent_after_s: float = 300.0,
        events_cap: int = 256,
    ) -> None:
        self.sim = sim
        self.server = server
        if obs is None:
            obs = server.obs if server is not None else Observatory()
        self.obs = obs
        self.ring = WindowRing(window_s, window_count)
        self.silent_after_s = float(silent_after_s)
        rules = slo_rules if slo_rules is not None else []
        self.slo_rules: list[SLORule] = [
            rule if isinstance(rule, SLORule) else SLORule.parse(rule)
            for rule in rules
        ]
        self.events: deque[HealthEvent] = deque(maxlen=events_cap)
        self.late = 0
        self._clients: dict[str, ClientState] = {}
        self._deferred: deque = deque()
        self._deferred_dropped = 0
        self._health: dict[str, ClientHealth] = {}
        self._silent: set[str] = set()
        registry = self.obs.registry
        self._m_applied = registry.counter(
            "fleet_reports_applied_total", "Telemetry reports applied"
        )
        self._m_dup = registry.counter(
            "fleet_reports_duplicate_total",
            "Replayed/retransmitted reports suppressed by (client, seq)",
        )
        self._m_folded = registry.counter(
            "fleet_reports_folded_total",
            "Seqs that arrived folded inside a surviving report",
        )
        self._m_deferred = registry.counter(
            "fleet_reports_deferred_total",
            "Reports parked awaiting a series definition (reorder)",
        )
        self._m_late = registry.counter(
            "fleet_reports_late_total",
            "Reports older than the window ring's reach",
        )
        self._m_gap_opened = registry.counter(
            "fleet_gap_opened_total", "Sequence gaps observed opening"
        )
        self._m_gap_healed = registry.counter(
            "fleet_gap_healed_total", "Sequence gaps fully recovered"
        )
        self._m_reply_bytes = registry.counter(
            "fleet_reply_bytes_total",
            "Marshalled telemetry ack/reply bytes returned to clients",
        )
        registry.gauge(
            "fleet_clients", "Clients that have reported at least once"
        ).default.set_function(lambda: float(len(self._clients)))
        registry.gauge(
            "fleet_open_gaps", "Unapplied seqs across all clients"
        ).default.set_function(
            lambda: float(sum(st.missing() for st in self._clients.values()))
        )
        registry.gauge(
            "fleet_unhealthy_clients",
            "Clients violating an SLO rule at the last evaluation",
        ).default.set_function(
            lambda: float(
                sum(1 for h in self._health.values() if not h.healthy)
            )
        )
        registry.gauge(
            "fleet_slo_violations",
            "Rule violations across clients at the last evaluation",
        ).default.set_function(
            lambda: float(
                sum(len(h.violations) for h in self._health.values())
            )
        )

    # -- wiring -----------------------------------------------------------------

    def register(self, transport: "Transport") -> None:
        """Register the ``rover.telemetry`` service on a serving host."""
        transport.register("rover.telemetry", self._on_telemetry)

    def _on_telemetry(self, body: dict, source) -> dict:
        if self.server is not None:
            if not self.server._authorized(body):
                return {"status": "unauthorized"}
            self.server._observe_watermark(body)
        # The wire body is the report itself plus envelope fields
        # (request_id, ackw, ...) the report keys don't collide with.
        reply = self.apply_report(body)
        self._m_reply_bytes.inc(marshalled_size(reply))
        return reply

    # -- report application ------------------------------------------------------

    def apply_report(self, report: dict) -> dict:
        client = report.get("c")
        seq = int(report.get("q", 0))
        if not client or seq <= 0:
            return {"status": "malformed"}
        state = self._clients.setdefault(client, ClientState(client))
        if state.is_applied(seq):
            state.duplicates += 1
            self._m_dup.inc()
            return {"status": "ok", "seq": seq, "dup": True}
        for wire_id, name in report.get("d", []):
            state.ids[int(wire_id)] = name
        if self._unresolved(state, report):
            return self._defer(report)
        reply = self._apply(state, report)
        self._retry_deferred()
        return reply

    def _unresolved(self, state: ClientState, report: dict) -> bool:
        for section in ("k", "g", "h"):
            for wire_id, __ in report.get(section, []):
                if int(wire_id) not in state.ids:
                    return True
        return False

    def _defer(self, report: dict) -> dict:
        if len(self._deferred) >= MAX_DEFERRED:
            self._deferred.popleft()
            self._deferred_dropped += 1
        self._deferred.append(report)
        self._m_deferred.inc()
        return {"status": "ok", "seq": int(report["q"]), "deferred": True}

    def _retry_deferred(self) -> None:
        if not self._deferred:
            return
        pending = list(self._deferred)
        self._deferred.clear()
        for report in pending:
            state = self._clients.setdefault(
                report["c"], ClientState(report["c"])
            )
            if state.is_applied(int(report["q"])):
                continue
            if self._unresolved(state, report):
                self._deferred.append(report)
            else:
                self._apply(state, report)

    def _apply(self, state: ClientState, report: dict) -> dict:
        seq = int(report["q"])
        missing_before = state.missing()
        state.max_seen = max(state.max_seen, seq)
        folded = [int(s) for s in report.get("f", [])]
        for covered in folded:
            if not state.is_applied(covered):
                state.mark_applied(covered)
                self._m_folded.inc()
        state.mark_applied(seq)
        missing_after = state.missing()
        now = self.sim.now
        if missing_after > missing_before:
            self._m_gap_opened.inc()
            self.events.append(HealthEvent(
                at=now, client=state.client, kind="gap",
                detail=f"seq {seq} arrived with {missing_after} seq(s) missing",
            ))
        elif missing_before > 0 and missing_after == 0:
            self._m_gap_healed.inc()
            self.events.append(HealthEvent(
                at=now, client=state.client, kind="gap_healed",
                detail=f"seq {seq} closed the gap (floor {state.floor})",
            ))

        state.link_class = report.get("l", state.link_class)
        state.last_report_at = now
        state.reports_applied += 1
        self._m_applied.inc()

        window = self.ring.slot(float(report.get("t1", now)))
        if window is None:
            self.late += 1
            self._m_late.inc()
        else:
            window.reports += 1
            window.clients.add(state.client)
            link_row = window._breakdown(window.by_link, state.link_class or "?")
            client_row = window._breakdown(window.by_client, state.client)
            link_row["reports"] += 1
            client_row["reports"] += 1

        for wire_id, delta in report.get("k", []):
            key = state.ids[int(wire_id)]
            delta = int(delta)
            state.totals[key] = state.totals.get(key, 0) + delta
            if window is not None:
                window.counters[key] = window.counters.get(key, 0) + delta
                family = family_of(key)
                if family in _WINDOW_FAMILIES:
                    link_row[family] = link_row.get(family, 0) + delta
                    client_row[family] = client_row.get(family, 0) + delta

        if seq > state.gauge_seq:
            for wire_id, value in report.get("g", []):
                state.gauges[state.ids[int(wire_id)]] = value
            state.gauge_seq = seq

        for wire_id, wire in report.get("h", []):
            key = state.ids[int(wire_id)]
            sketch = state.sketches.get(key)
            if sketch is None:
                state.sketches[key] = LogSketch.from_wire(wire)
            else:
                sketch.merge(LogSketch.from_wire(wire))
        return {"status": "ok", "seq": seq}

    # -- rollup access -----------------------------------------------------------

    @property
    def clients(self) -> dict[str, ClientState]:
        return self._clients

    def client_totals(self, client: str) -> dict[str, int]:
        state = self._clients.get(client)
        return dict(state.totals) if state is not None else {}

    def fleet_totals(self) -> dict[str, int]:
        """All-time counter totals summed across clients, by series key."""
        out: dict[str, int] = {}
        for state in self._clients.values():
            for key, value in state.totals.items():
                out[key] = out.get(key, 0) + value
        return out

    def reports_applied(self) -> int:
        return sum(st.reports_applied for st in self._clients.values())

    def duplicates(self) -> int:
        return sum(st.duplicates for st in self._clients.values())

    def reply_bytes(self) -> int:
        """Marshalled bytes of every telemetry reply sent back so far."""
        return int(self._m_reply_bytes.value)

    # -- health ------------------------------------------------------------------

    def evaluate_health(self, now: Optional[float] = None) -> dict[str, ClientHealth]:
        """(Re)compute per-client health; records transition events."""
        at = self.sim.now if now is None else now
        health: dict[str, ClientHealth] = {}
        for client in sorted(self._clients):
            state = self._clients[client]
            entry = ClientHealth(client=client)
            delivered = state.total_for("sched_delivered_total")
            failed = state.total_for("qrpc_failed_total")
            retrans = state.total_for("sched_retransmissions_total")
            attempts = delivered + failed
            entry.delivery_rate = delivered / attempts if attempts else 1.0
            entry.retransmit_ratio = retrans / delivered if delivered else 0.0
            rtt = state.sketch_for("qrpc_latency_seconds")
            if rtt.total:
                entry.rtt_p50 = rtt.percentile(50)
                entry.rtt_p95 = rtt.percentile(95)
                entry.rtt_p99 = rtt.percentile(99)
            entry.silent = bool(
                state.last_report_at
                and at - state.last_report_at > self.silent_after_s
            )
            for rule in self.slo_rules:
                observed = self._observe(state, rule)
                if not rule.check(observed):
                    entry.violations.append(
                        f"{rule.text} (observed {observed:.6g})"
                    )
            entry.healthy = not entry.violations and not entry.silent
            health[client] = entry
            self._transition(at, client, entry)
        self._health = health
        return health

    def _observe(self, state: ClientState, rule: SLORule) -> Optional[float]:
        if rule.stat == "total":
            return float(state.total_for(rule.metric))
        if rule.stat == "ratio":
            denominator = state.total_for(rule.denominator)
            if not denominator:
                return None
            return state.total_for(rule.metric) / denominator
        sketch = state.sketch_for(rule.metric)
        if not sketch.total:
            return None
        return sketch.percentile(float(rule.stat[1:]))

    def _transition(self, at: float, client: str, entry: ClientHealth) -> None:
        was_healthy = (
            self._health[client].healthy if client in self._health else True
        )
        if entry.silent and client not in self._silent:
            self._silent.add(client)
            self.events.append(HealthEvent(
                at=at, client=client, kind="silent",
                detail=f"no report for > {self.silent_after_s:g}s",
            ))
        elif not entry.silent:
            self._silent.discard(client)
        if was_healthy and not entry.healthy:
            detail = "; ".join(entry.violations) or "went silent"
            self.events.append(HealthEvent(
                at=at, client=client, kind="degraded", detail=detail
            ))
        elif not was_healthy and entry.healthy:
            self.events.append(HealthEvent(
                at=at, client=client, kind="recovered", detail=""
            ))

    def health(self) -> dict[str, ClientHealth]:
        """The most recent :meth:`evaluate_health` result."""
        return self._health

    def worst_clients(self, k: int = 10) -> list[ClientHealth]:
        """Clients ranked most-broken first (violations, delivery, RTT)."""
        ranked = sorted(
            self._health.values(),
            key=lambda h: (
                -len(h.violations),
                -int(h.silent),
                h.delivery_rate,
                -h.rtt_p99,
                h.client,
            ),
        )
        return ranked[:k]

    def summary(self) -> dict:
        """Fleet-wide counters for tables/JSONL; health from last eval."""
        unhealthy = sum(1 for h in self._health.values() if not h.healthy)
        return {
            "clients": len(self._clients),
            "reports_applied": self.reports_applied(),
            "duplicates": self.duplicates(),
            "deferred_waiting": len(self._deferred),
            "deferred_dropped": self._deferred_dropped,
            "late": self.late,
            "open_gaps": sum(st.missing() for st in self._clients.values()),
            "windows": len(self.ring),
            "unhealthy": unhealthy,
            "violations": sum(
                len(h.violations) for h in self._health.values()
            ),
            "events": len(self.events),
        }
