"""Mergeable log-bucketed histogram sketches.

A :class:`~repro.obs.metrics.HistogramChild` keeps every raw
observation — fine locally, far too heavy to ship from a thousand
clients.  A :class:`LogSketch` summarises a sample into logarithmic
buckets (index ``ceil(log2(v) / GAMMA_LOG2)``), which makes it

* **compact**: tens of buckets cover nanoseconds to minutes,
* **mergeable**: merging two sketches is bucket-wise addition, so the
  aggregator can combine sketches across reports, windows, and
  clients and still answer percentile queries, and
* **bounded-error**: a value lands in a bucket whose bounds are a
  factor of ``2 ** GAMMA_LOG2`` apart, so any percentile is off by at
  most ~19% relative error (and the max is tracked exactly).

The wire form is a plain dict of ints/floats with sorted bucket pairs
so it marshals deterministically (see :mod:`repro.net.message`).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

#: Bucket width in log2 space: bucket boundaries are ``2 ** (i / 4)``,
#: i.e. consecutive bounds differ by ~19%.
GAMMA_LOG2 = 0.25

#: Observations at or below this magnitude land in the zero bucket.
MIN_VALUE = 1e-9


def bucket_index(value: float) -> int:
    """The sketch bucket for ``value`` (> MIN_VALUE)."""
    return math.ceil(math.log2(value) / GAMMA_LOG2)


def bucket_upper(index: int) -> float:
    """Upper bound of bucket ``index``."""
    return 2.0 ** (index * GAMMA_LOG2)


class LogSketch:
    """A mergeable summary of a sample of non-negative values."""

    __slots__ = ("zero", "counts", "total", "sum", "max")

    def __init__(self) -> None:
        self.zero = 0                      # observations <= MIN_VALUE
        self.counts: dict[int, int] = {}   # bucket index -> count
        self.total = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"LogSketch values must be >= 0, got {value}")
        self.total += 1
        self.sum += value
        if value > self.max:
            self.max = value
        if value <= MIN_VALUE:
            self.zero += 1
            return
        idx = bucket_index(value)
        self.counts[idx] = self.counts.get(idx, 0) + 1

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def merge(self, other: "LogSketch") -> "LogSketch":
        """Fold ``other`` into self (bucket-wise addition); returns self."""
        self.zero += other.zero
        self.total += other.total
        self.sum += other.sum
        if other.max > self.max:
            self.max = other.max
        for idx, count in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + count
        return self

    def percentile(self, p: float) -> float:
        """Approximate ``p``-th percentile (0..100); 0.0 when empty.

        Walks buckets in order and returns the upper bound of the
        bucket containing the target rank, clamped to the exact max.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.total == 0:
            return 0.0
        rank = max(1, math.ceil(self.total * p / 100.0))
        if rank <= self.zero:
            return 0.0
        seen = self.zero
        for idx in sorted(self.counts):
            seen += self.counts[idx]
            if seen >= rank:
                return min(bucket_upper(idx), self.max)
        return self.max

    @property
    def mean(self) -> float:
        if self.total == 0:
            return 0.0
        return self.sum / self.total

    def copy(self) -> "LogSketch":
        out = LogSketch()
        out.merge(self)
        return out

    # -- wire format ------------------------------------------------------------

    def to_wire(self) -> dict:
        """Compact deterministic dict: buckets as sorted ``[idx, count]``.

        ``sum`` and ``max`` are rounded to 6 significant digits — the
        sketch is already a ~19%-relative-error summary, and a full
        float repr would triple the wire cost of every bucket list.
        """
        wire: dict = {
            "n": self.total,
            "s": float(f"{self.sum:.6g}"),
            "m": float(f"{self.max:.6g}"),
        }
        if self.zero:
            wire["z"] = self.zero
        if self.counts:
            wire["b"] = [[idx, self.counts[idx]] for idx in sorted(self.counts)]
        return wire

    @staticmethod
    def from_wire(wire: dict) -> "LogSketch":
        out = LogSketch()
        out.total = int(wire.get("n", 0))
        out.sum = float(wire.get("s", 0.0))
        out.max = float(wire.get("m", 0.0))
        out.zero = int(wire.get("z", 0))
        for idx, count in wire.get("b", []):
            out.counts[int(idx)] = int(count)
        return out

    @staticmethod
    def merge_wire(a: dict, b: dict) -> dict:
        """Merge two wire-form sketches without materialising objects twice."""
        return LogSketch.from_wire(a).merge(LogSketch.from_wire(b)).to_wire()

    def __repr__(self) -> str:
        return (
            f"LogSketch(n={self.total}, mean={self.mean:.6g}, "
            f"p95={self.percentile(95):.6g}, max={self.max:.6g})"
        )
