"""Declarative SLO rules over fleet telemetry.

A rule is one line of text — easy to keep in a config file or pass on
the ``python -m repro.obs.fleet`` command line::

    p99 qrpc_latency_seconds <= 30
    p50 sched_queue_wait_seconds < 5
    total qrpc_failed_total <= 0
    ratio sched_retransmissions_total sched_delivered_total < 0.5

Grammar (whitespace separated)::

    <stat> <metric> <op> <threshold>

* ``stat`` — ``p50`` / ``p95`` / ``p99`` (sketch percentile over the
  evaluation scope), ``total`` (summed counter), or ``ratio`` (in
  which case *two* metric names follow: numerator then denominator).
* ``metric`` — a metric family name; every shipped series of that
  family (any label combination) contributes.
* ``op`` — ``<``, ``<=``, ``>``, ``>=``.
* ``threshold`` — a float.

Rules are evaluated **per client** by the
:class:`~repro.obs.fleet.aggregator.FleetAggregator`; a client
violating any rule is unhealthy, and health *transitions* are recorded
as :class:`HealthEvent` entries in a bounded deque.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

_OPS: dict[str, Callable[[float, float], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_STATS = ("p50", "p95", "p99", "total", "ratio")


class SLOError(Exception):
    """Malformed SLO rule text."""


@dataclass(frozen=True)
class SLORule:
    """One parsed rule; see the module docstring for the grammar."""

    stat: str                 # p50 | p95 | p99 | total | ratio
    metric: str               # family name (numerator for ratio)
    denominator: str          # only for ratio
    op: str
    threshold: float
    text: str                 # the original rule line

    @staticmethod
    def parse(line: str) -> "SLORule":
        parts = line.split()
        if len(parts) < 4:
            raise SLOError(f"rule too short: {line!r}")
        stat = parts[0].lower()
        if stat not in _STATS:
            raise SLOError(f"unknown stat {parts[0]!r} in {line!r}")
        if stat == "ratio":
            if len(parts) != 5:
                raise SLOError(
                    f"ratio rules read: ratio <num> <den> <op> <x>: {line!r}"
                )
            metric, denominator, op, raw = parts[1], parts[2], parts[3], parts[4]
        else:
            if len(parts) != 4:
                raise SLOError(f"rules read: <stat> <metric> <op> <x>: {line!r}")
            metric, denominator, op, raw = parts[1], "", parts[2], parts[3]
        if op not in _OPS:
            raise SLOError(f"unknown comparator {op!r} in {line!r}")
        try:
            threshold = float(raw)
        except ValueError:
            raise SLOError(f"bad threshold {raw!r} in {line!r}") from None
        return SLORule(
            stat=stat,
            metric=metric,
            denominator=denominator,
            op=op,
            threshold=threshold,
            text=" ".join(parts),
        )

    def check(self, observed: Optional[float]) -> bool:
        """True = conformant.  ``None`` (no data) conforms vacuously."""
        if observed is None:
            return True
        return _OPS[self.op](observed, self.threshold)


def parse_rules(lines: list[str]) -> list[SLORule]:
    """Parse rule lines, skipping blanks and ``#`` comments."""
    rules = []
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        rules.append(SLORule.parse(stripped))
    return rules


#: The stock rule set the CLI and benchmark E15 evaluate: end-to-end
#: QRPC latency bounded (queued requests may legitimately wait out a
#: disconnection, hence the generous p99), terminal failures rare, and
#: retransmissions not dominating deliveries.
DEFAULT_SLO_RULES = (
    "p95 qrpc_latency_seconds <= 120",
    "p99 qrpc_latency_seconds <= 600",
    "ratio sched_retransmissions_total sched_delivered_total <= 1.0",
    "ratio qrpc_failed_total sched_delivered_total <= 0.05",
)


@dataclass(frozen=True)
class HealthEvent:
    """One health-state transition, kept in the aggregator's bounded log."""

    at: float                 # simulated time of the transition
    client: str               # "" for fleet-scope events
    kind: str                 # degraded | recovered | silent | gap | gap_healed
    detail: str

    def as_row(self) -> dict:
        return {
            "at": self.at,
            "client": self.client,
            "kind": self.kind,
            "detail": self.detail,
        }


@dataclass
class ClientHealth:
    """Evaluation result for one client at one instant."""

    client: str
    healthy: bool = True
    violations: list[str] = field(default_factory=list)
    silent: bool = False
    delivery_rate: float = 1.0
    retransmit_ratio: float = 0.0
    rtt_p50: float = 0.0
    rtt_p95: float = 0.0
    rtt_p99: float = 0.0
