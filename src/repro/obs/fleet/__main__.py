"""Entry point for ``python -m repro.obs.fleet``."""

from repro.obs.fleet.cli import main

raise SystemExit(main())
