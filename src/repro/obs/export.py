"""Exporters for collected spans.

Three consumers, mirroring how the paper's evaluation is read:

* :func:`write_jsonl` / :func:`read_jsonl` — durable trace dumps, one
  JSON span per line, round-trippable;
* :func:`summary` / :func:`summary_table` — p50/p95/p99 per stage per
  network configuration, the stage-attribution view ("log overhead is
  dwarfed by communication cost");
* :func:`stage_lanes` — per-stage activity lanes that plug into the
  ASCII :class:`repro.bench.timeline.Timeline` renderer.

Plus :func:`check_trace`, the integrity predicate the tests and the
bench CLI share: every child must reference a live parent, sit inside
the root's interval, and the children's summed durations must not
exceed the root's duration.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional, Sequence

from repro.obs.metrics import percentile
from repro.obs.trace import Span

#: Slack for float accumulation when comparing summed child durations
#: against the root span (the stages partition the root exactly, so
#: only representation error can push the sum past it).
_FLOAT_SLACK = 1e-9


# ---------------------------------------------------------------------------
# JSONL round-trip
# ---------------------------------------------------------------------------


def write_jsonl(spans: Iterable[Span], path: str) -> int:
    """Dump spans as JSON-lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as f:
        for span in spans:
            f.write(json.dumps(span.to_wire(), sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path: str) -> list[Span]:
    """Reload a :func:`write_jsonl` dump."""
    spans: list[Span] = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                spans.append(Span.from_wire(json.loads(line)))
    return spans


# ---------------------------------------------------------------------------
# Trace integrity
# ---------------------------------------------------------------------------


def check_trace(spans: Sequence[Span]) -> dict:
    """Validate one trace's parent/child structure.

    ``spans`` must all share a trace id.  Returns a report dict with
    ``root``, ``children``, ``child_duration_sum`` and ``ok``; raises
    ``ValueError`` on structural corruption (several roots, mixed
    trace ids, orphaned parent references).
    """
    if not spans:
        raise ValueError("empty trace")
    trace_ids = {span.trace_id for span in spans}
    if len(trace_ids) != 1:
        raise ValueError(f"mixed trace ids: {sorted(trace_ids)}")
    roots = [span for span in spans if not span.parent_id]
    if len(roots) != 1:
        raise ValueError(f"expected exactly one root span, found {len(roots)}")
    root = roots[0]
    by_id = {span.span_id: span for span in spans}
    children = [span for span in spans if span.parent_id]
    for child in children:
        if child.parent_id not in by_id:
            raise ValueError(
                f"span {child.span_id} ({child.name}) references "
                f"unknown parent {child.parent_id}"
            )
    child_sum = sum(child.duration for child in children)
    ok = child_sum <= root.duration + _FLOAT_SLACK and all(
        root.start - _FLOAT_SLACK <= child.start
        and child.end <= root.end + _FLOAT_SLACK
        for child in children
    )
    return {
        "root": root,
        "children": children,
        "child_duration_sum": child_sum,
        "ok": ok,
    }


def complete_traces(spans: Sequence[Span]) -> dict[str, list[Span]]:
    """Group spans by trace id, keeping only traces that have a root."""
    grouped: dict[str, list[Span]] = {}
    for span in spans:
        grouped.setdefault(span.trace_id, []).append(span)
    return {
        trace_id: members
        for trace_id, members in grouped.items()
        if any(not span.parent_id for span in members)
    }


# ---------------------------------------------------------------------------
# Stage summary (p50/p95/p99)
# ---------------------------------------------------------------------------


def summary(
    spans: Sequence[Span],
    group_attr: Optional[str] = "link",
) -> list[dict]:
    """Aggregate spans into per-(stage, group) rows.

    ``group_attr`` names a span attribute (the testbed stamps
    ``link``); ``None`` collapses everything per stage.  Rows carry
    count, total seconds, and exact p50/p95/p99 of span durations.
    """
    buckets: dict[tuple[str, str], list[float]] = {}
    for span in spans:
        group = str(span.attrs.get(group_attr, "")) if group_attr else ""
        buckets.setdefault((group, span.name), []).append(span.duration)
    rows = []
    for (group, name) in sorted(buckets):
        durations = buckets[(group, name)]
        row = {
            "group": group,
            "stage": name,
            "count": len(durations),
            "total_s": sum(durations),
            "p50_s": percentile(durations, 50),
            "p95_s": percentile(durations, 95),
            "p99_s": percentile(durations, 99),
        }
        rows.append(row)
    return rows


def _format_seconds(value: float) -> str:
    if value == 0:
        return "0"
    if value < 0.001:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.3f}s"


def summary_table(spans: Sequence[Span], group_attr: Optional[str] = "link") -> str:
    """Render :func:`summary` as an aligned plain-text table."""
    rows = summary(spans, group_attr=group_attr)
    if not rows:
        return "(no spans recorded)"
    header = ["config", "stage", "count", "total", "p50", "p95", "p99"]
    body = [
        [
            row["group"] or "-",
            row["stage"],
            str(row["count"]),
            _format_seconds(row["total_s"]),
            _format_seconds(row["p50_s"]),
            _format_seconds(row["p95_s"]),
            _format_seconds(row["p99_s"]),
        ]
        for row in rows
    ]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body))
        for i in range(len(header))
    ]
    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    return "\n".join([fmt(header), rule] + [fmt(line) for line in body])


# ---------------------------------------------------------------------------
# Timeline lanes
# ---------------------------------------------------------------------------


def stage_lanes(
    spans: Sequence[Span],
    start: float,
    end: float,
    width: int = 72,
) -> dict[str, str]:
    """One ASCII lane per stage: ``#`` where any such span is active.

    Plugs into :meth:`repro.bench.timeline.Timeline.render` (its
    ``spans=`` argument) so trace activity lines up under the link and
    queue lanes.
    """
    if end <= start:
        raise ValueError("end must be after start")
    lanes: dict[str, list[str]] = {}
    step = (end - start) / width
    for span in spans:
        cells = lanes.setdefault(span.name, ["."] * width)
        first = max(0, int((span.start - start) / step))
        last = min(width - 1, int((span.end - start) / step))
        if span.end < start or span.start > end:
            continue
        for column in range(first, last + 1):
            cells[column] = "#"
    return {name: "".join(cells) for name, cells in sorted(lanes.items())}


# ---------------------------------------------------------------------------
# Histogram percentile table
# ---------------------------------------------------------------------------


def histogram_rows(registry) -> list[dict]:
    """Per-series percentile rows for every non-empty histogram.

    The local-view twin of the fleet rollups: each labelled histogram
    series reports count, sum, and exact p50/p95/p99 so a single
    client's latency view matches what the aggregator derives from its
    shipped sketches.
    """
    from repro.obs.metrics import HistogramChild, format_series

    rows = []
    for metric in sorted(registry.metrics(), key=lambda m: m.name):
        for key, child in sorted(metric.children()):
            if not isinstance(child, HistogramChild) or not child.count:
                continue
            rows.append(
                {
                    "series": format_series(metric.name, metric.labelnames, key),
                    "count": child.count,
                    "sum_s": child.sum,
                    "p50_s": child.percentile(50),
                    "p95_s": child.percentile(95),
                    "p99_s": child.percentile(99),
                }
            )
    return rows


def histogram_table(registry) -> str:
    """Render :func:`histogram_rows` as an aligned plain-text table.

    Returns ``""`` when the registry holds no non-empty histogram.
    """
    rows = histogram_rows(registry)
    if not rows:
        return ""
    header = ["series", "count", "sum", "p50", "p95", "p99"]
    body = [
        [
            row["series"],
            str(row["count"]),
            _format_seconds(row["sum_s"]),
            _format_seconds(row["p50_s"]),
            _format_seconds(row["p95_s"]),
            _format_seconds(row["p99_s"]),
        ]
        for row in rows
    ]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body))
        for i in range(len(header))
    ]

    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    return "\n".join([fmt(header), rule] + [fmt(line) for line in body])
