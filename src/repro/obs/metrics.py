"""Metrics primitives: counters, gauges, histograms, and a registry.

Prometheus-flavoured but dependency-free and aware that this codebase
measures *virtual* time: nothing here ever reads the wall clock, so
recording a metric costs zero simulated seconds.  A metric is created
once on a :class:`MetricsRegistry` and then addressed through labelled
children::

    registry = MetricsRegistry()
    hits = registry.counter("cache_hits_total", labelnames=("owner",))
    hits.labels(owner="client").inc()

There is one **process-global default registry**
(:func:`default_registry`) for ad-hoc use, and every testbed builds a
private :class:`MetricsRegistry` of its own so two scenarios in one
process never share counters (see :mod:`repro.obs`).
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterable, Optional, Sequence


class MetricError(Exception):
    """Metric misuse (name clash, bad labels, negative counter step)."""


#: Default ceiling on labelled children per metric family.  At fleet
#: scale a carelessly-labelled metric (say, one child per request id)
#: would grow client memory without bound; creation past the cap is a
#: hard :class:`MetricError` rather than a silent leak.
DEFAULT_MAX_CHILDREN = 10_000


def format_series(
    name: str, labelnames: Sequence[str], labelvalues: Sequence[str]
) -> str:
    """Canonical ``name{label=value,...}`` series key (snapshot format).

    Shared by :meth:`MetricsRegistry.snapshot` and the fleet telemetry
    reporter so a series is addressed identically on both ends of the
    wire.
    """
    if not labelnames:
        return name
    body = ",".join(f"{ln}={lv}" for ln, lv in zip(labelnames, labelvalues))
    return f"{name}{{{body}}}"


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0..100) with linear interpolation.

    Matches ``numpy.percentile(..., method="linear")``: for a sorted
    sample ``v[0..n-1]`` the rank is ``(n - 1) * p / 100`` and the
    result interpolates between the two straddling observations.
    """
    if not values:
        raise MetricError("percentile of an empty sample")
    if not 0.0 <= p <= 100.0:
        raise MetricError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (p / 100.0)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


class _Child:
    """One labelled series of a metric."""

    __slots__ = ("labelvalues",)

    def __init__(self, labelvalues: tuple[str, ...]) -> None:
        self.labelvalues = labelvalues


class CounterChild(_Child):
    __slots__ = ("_value",)

    def __init__(self, labelvalues: tuple[str, ...]) -> None:
        super().__init__(labelvalues)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a Gauge")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class GaugeChild(_Child):
    __slots__ = ("_value", "_fn")

    def __init__(self, labelvalues: tuple[str, ...]) -> None:
        super().__init__(labelvalues)
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Make this gauge a live view: ``fn()`` is called at read time.

        This is how pre-existing plain-attribute counters (e.g.
        ``RoverServer.imports_served``) are surfaced through the
        registry without rewriting every increment site.
        """
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


#: Default latency-ish buckets (seconds), spanning a LAN RPC to a
#: long disconnection.  Exported snapshots report cumulative counts.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 600.0,
)


class HistogramChild(_Child):
    __slots__ = ("_values", "buckets", "bucket_counts", "_sum")

    def __init__(
        self, labelvalues: tuple[str, ...], buckets: tuple[float, ...]
    ) -> None:
        super().__init__(labelvalues)
        self.buckets = buckets
        self.bucket_counts = [0] * (len(buckets) + 1)  # +1 for +Inf
        self._values: list[float] = []
        self._sum = 0.0

    def observe(self, value: float) -> None:
        self._values.append(value)
        self._sum += value
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        if not self._values:
            return 0.0
        return self._sum / len(self._values)

    def percentile(self, p: float) -> float:
        """Exact percentile from the raw observations (not buckets)."""
        return percentile(self._values, p)

    def values(self) -> list[float]:
        return list(self._values)

    @property
    def value(self) -> float:  # snapshot convention: a histogram's count
        return float(self.count)


class Metric:
    """A named family of labelled children (one kind: counter/gauge/histogram)."""

    child_class: type = CounterChild
    kind = "counter"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_children: Optional[int] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.max_children = (
            DEFAULT_MAX_CHILDREN if max_children is None else int(max_children)
        )
        self._children: dict[tuple[str, ...], _Child] = {}

    def labels(self, **labelvalues: str) -> _Child:
        if set(labelvalues) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[ln]) for ln in self.labelnames)
        child = self._children.get(key)
        if child is None:
            if len(self._children) >= self.max_children:
                raise MetricError(
                    f"{self.name}: label cardinality cap reached "
                    f"({self.max_children} children); check for an "
                    f"unbounded label (request ids, timestamps, ...)"
                )
            child = self._make_child(key)
            self._children[key] = child
        return child

    def _make_child(self, key: tuple[str, ...]) -> _Child:
        return self.child_class(key)

    @property
    def default(self) -> _Child:
        """The unlabelled series (only for metrics without labelnames)."""
        if self.labelnames:
            raise MetricError(f"{self.name} requires labels {self.labelnames}")
        return self.labels()

    def children(self) -> Iterable[tuple[tuple[str, ...], _Child]]:
        return list(self._children.items())

    # convenience passthroughs for unlabelled metrics
    def inc(self, amount: float = 1.0) -> None:
        self.default.inc(amount)  # type: ignore[attr-defined]


class Counter(Metric):
    child_class = CounterChild
    kind = "counter"

    @property
    def value(self) -> float:
        return sum(child.value for __, child in self.children())  # type: ignore[attr-defined]


class Gauge(Metric):
    child_class = GaugeChild
    kind = "gauge"

    def set(self, value: float) -> None:
        self.default.set(value)  # type: ignore[attr-defined]

    @property
    def value(self) -> float:
        return sum(child.value for __, child in self.children())  # type: ignore[attr-defined]


class Histogram(Metric):
    child_class = HistogramChild
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
        max_children: Optional[int] = None,
    ) -> None:
        super().__init__(name, help, labelnames, max_children=max_children)
        self.buckets = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS

    def _make_child(self, key: tuple[str, ...]) -> HistogramChild:
        return HistogramChild(key, self.buckets)

    def observe(self, value: float) -> None:
        self.default.observe(value)  # type: ignore[attr-defined]


class MetricsRegistry:
    """A namespace of metrics.

    Registration is idempotent: asking twice for the same name returns
    the existing metric (so several components can share one family
    and distinguish themselves with an ``owner``/``host`` label), but
    re-registering a name as a *different* kind raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _register(self, cls: type, name: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise MetricError(
                    f"{name} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_children: Optional[int] = None,
    ) -> Counter:
        return self._register(
            Counter, name, help=help, labelnames=labelnames,
            max_children=max_children,
        )  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_children: Optional[int] = None,
    ) -> Gauge:
        return self._register(
            Gauge, name, help=help, labelnames=labelnames,
            max_children=max_children,
        )  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
        max_children: Optional[int] = None,
    ) -> Histogram:
        return self._register(
            Histogram, name, help=help, labelnames=labelnames, buckets=buckets,
            max_children=max_children,
        )  # type: ignore[return-value]

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def metrics(self) -> list[Metric]:
        return list(self._metrics.values())

    def snapshot(self) -> dict[str, float]:
        """Flat ``name{label=value,...} -> number`` view of every series.

        Counters/gauges report their value; histograms report their
        observation count plus ``_sum`` and exact ``_p50/_p95/_p99``
        series when non-empty.
        """
        out: dict[str, float] = {}
        for metric in self._metrics.values():
            for key, child in metric.children():
                series = format_series(metric.name, metric.labelnames, key)
                if isinstance(child, HistogramChild):
                    out[f"{series}_count"] = float(child.count)
                    out[f"{series}_sum"] = child.sum
                    if child.count:
                        out[f"{series}_p50"] = child.percentile(50)
                        out[f"{series}_p95"] = child.percentile(95)
                        out[f"{series}_p99"] = child.percentile(99)
                else:
                    out[series] = child.value  # type: ignore[attr-defined]
        return out

    def render(self) -> str:
        """Plain-text dump of the snapshot, one series per line."""
        snap = self.snapshot()
        if not snap:
            return "(no metrics recorded)"
        width = max(len(name) for name in snap)
        lines = []
        for name in sorted(snap):
            value = snap[name]
            text = f"{value:.6f}".rstrip("0").rstrip(".") if value else "0"
            lines.append(f"{name:<{width}}  {text}")
        return "\n".join(lines)


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry (ad-hoc scripts; NOT used by testbeds)."""
    return _DEFAULT_REGISTRY
