"""Unified observability for the QRPC pipeline (``repro.obs``).

The toolkit's evaluation hinges on *attributing* time inside the
pipeline, not just summing it: the paper's claims ("log overhead is
dwarfed by communication cost on low-bandwidth networks", local RDO
invocation orders of magnitude faster than RPC) are all statements
about individual stages.  This package provides:

* :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram``
  with labels, grouped in a :class:`MetricsRegistry`;
* :mod:`repro.obs.trace` — per-request spans (``log.append``,
  ``queue.wait``, ``route.select``, ``link.transmit``, ``retransmit``,
  ``server.execute``, ``reply.deliver``) under a ``qrpc`` root, with
  the trace context propagated on the QRPC envelope;
* :mod:`repro.obs.export` — JSONL dump/reload, p50/p95/p99 stage
  summaries, and timeline lanes.

An :class:`Observatory` bundles one registry and one tracer.  Every
testbed owns a private Observatory (``bed.obs``) so scenarios in one
process stay isolated; components built outside a testbed default to
a private Observatory of their own unless one is passed in.  The
bench CLI installs a *capture* Observatory
(:func:`set_capture`) which ``build_testbed`` picks up so a whole
experiment run lands in one trace dump::

    python -m repro.bench --trace-out /tmp/e2.jsonl --metrics e2
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    percentile,
)
from repro.obs.trace import TRACE_KEY, Span, Tracer, parse_context, wire_context
from repro.obs import export


class Observatory:
    """One registry plus one tracer — the unit of isolation."""

    def __init__(
        self,
        tracing: bool = False,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=tracing)

    @property
    def spans(self) -> list[Span]:
        return self.tracer.spans

    def snapshot(self) -> dict[str, float]:
        """Flat series view; histograms include ``_p50/_p95/_p99``."""
        return self.registry.snapshot()

    def summary_table(self, include_metrics: bool = True) -> str:
        """Span-stage summary plus (by default) histogram percentiles.

        The trace table attributes time to pipeline stages; the
        histogram section reports count/sum/p50/p95/p99 per labelled
        series — the local twin of the fleet rollups
        (:mod:`repro.obs.fleet`), so one client's view matches what
        the aggregator reconstructs from its shipped sketches.
        """
        table = export.summary_table(self.tracer.spans)
        if not include_metrics:
            return table
        metrics = export.histogram_table(self.registry)
        if not metrics:
            return table
        if table == "(no spans recorded)":
            return metrics
        return f"{table}\n\n{metrics}"


_capture: Optional[Observatory] = None


def set_capture(obs: Optional[Observatory]) -> None:
    """Install (or clear, with ``None``) the process-wide capture
    Observatory that :func:`repro.testbed.build_testbed` adopts when no
    explicit one is passed — how the bench CLI traces experiments that
    build their testbeds internally."""
    global _capture
    _capture = obs


def active_capture() -> Optional[Observatory]:
    return _capture


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observatory",
    "Span",
    "TRACE_KEY",
    "Tracer",
    "active_capture",
    "default_registry",
    "export",
    "parse_context",
    "percentile",
    "set_capture",
    "wire_context",
]
