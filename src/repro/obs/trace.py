"""Structured span tracing for the QRPC pipeline.

A *trace* is one QRPC's journey through the toolkit; a *span* is one
named stage of that journey with a start/end in **virtual time**.  The
root span (``qrpc``) opens when the access manager accepts the request
and closes when the reply (or terminal failure) is delivered; the
stages between are children that reference the root through
``parent_id``:

========================  =====================================================
span name                 covers
========================  =====================================================
``qrpc``                  root: request accepted -> reply/failure delivered
``log.append``            stable-log append + flush on the critical path
``queue.wait``            sitting in the network scheduler (attr ``priority``)
``route.select``          carrier choice at dispatch (attrs ``route``, ``kind``)
``link.transmit``         one wire crossing, request or reply (attr ``link``)
``retransmit``            backoff between a failed attempt and the retry
``server.execute``        server-side service handler (+ modelled compute)
``reply.deliver``         reply applied client-side (cache/promise/ack)
========================  =====================================================

The context travels on the QRPC envelope as a ``[trace_id, span_id]``
pair (see :meth:`repro.core.qrpc.QRPCRequest.to_wire`), so the server
side of the simulation attributes its spans to the client's trace.

Tracing is **disabled by default and zero-cost when off**: every
instrumentation site guards on :attr:`Tracer.enabled`, spans never
consume virtual time, and a disabled tracer allocates nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

#: Wire key for the propagated context inside request bodies.
TRACE_KEY = "trace"


@dataclass
class Span:
    """One named stage of a trace, in virtual seconds."""

    trace_id: str
    span_id: str
    parent_id: str
    name: str
    start: float
    end: float
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def to_wire(self) -> dict:
        wire = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
        }
        if self.attrs:
            wire["attrs"] = self.attrs
        return wire

    @staticmethod
    def from_wire(wire: dict) -> "Span":
        return Span(
            trace_id=wire["trace_id"],
            span_id=wire["span_id"],
            parent_id=wire.get("parent_id", ""),
            name=wire["name"],
            start=float(wire["start"]),
            end=float(wire["end"]),
            status=wire.get("status", "ok"),
            attrs=dict(wire.get("attrs", {})),
        )


def wire_context(span: Span) -> list:
    """The ``[trace_id, span_id]`` pair carried on the envelope."""
    return [span.trace_id, span.span_id]


def parse_context(value: Any) -> Optional[tuple[str, str]]:
    """Recover ``(trace_id, parent_span_id)`` from an envelope field."""
    if (
        isinstance(value, (list, tuple))
        and len(value) == 2
        and all(isinstance(item, str) for item in value)
    ):
        return value[0], value[1]
    return None


class Tracer:
    """Collects finished spans for one observatory.

    ``scope_attrs`` are stamped onto every span at creation; the
    testbed sets ``{"link": <spec name>}`` there so a summary can
    group stages per network configuration.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.spans: list[Span] = []
        self.scope_attrs: dict[str, Any] = {}
        self._next_trace = 0
        self._next_span = 0

    # -- creating spans -----------------------------------------------------

    def _new_span_id(self) -> str:
        self._next_span += 1
        return f"s{self._next_span:06d}"

    def start_trace(self, name: str, start: float, **attrs: Any) -> Span:
        """Open a root span (fresh trace id).  Caller must finish() it."""
        self._next_trace += 1
        trace_id = f"t{self._next_trace:06d}"
        return Span(
            trace_id=trace_id,
            span_id=self._new_span_id(),
            parent_id="",
            name=name,
            start=start,
            end=start,
            attrs={**self.scope_attrs, **attrs},
        )

    def start_span(
        self,
        name: str,
        context: tuple[str, str],
        start: float,
        **attrs: Any,
    ) -> Span:
        """Open a child span under ``(trace_id, parent_span_id)``."""
        trace_id, parent_id = context
        return Span(
            trace_id=trace_id,
            span_id=self._new_span_id(),
            parent_id=parent_id,
            name=name,
            start=start,
            end=start,
            attrs={**self.scope_attrs, **attrs},
        )

    def finish(self, span: Span, end: float, status: str = "ok") -> Span:
        """Close a span and collect it."""
        span.end = end
        span.status = status
        self.spans.append(span)
        return span

    def record(
        self,
        name: str,
        context: tuple[str, str],
        start: float,
        end: float,
        status: str = "ok",
        **attrs: Any,
    ) -> Span:
        """Create and immediately collect a completed child span."""
        span = self.start_span(name, context, start, **attrs)
        return self.finish(span, end, status)

    # -- reading ------------------------------------------------------------

    def traces(self) -> dict[str, list[Span]]:
        """Finished spans grouped by trace id."""
        grouped: dict[str, list[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def clear(self) -> None:
        self.spans.clear()
