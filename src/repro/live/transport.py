"""TCP transport with the simulated transport's interface.

Frames are 4-byte big-endian length prefixes followed by a marshalled
envelope — the same ``{"kind": "request"|"reply", ...}`` shape the
simulated transport uses, so the unmodified
:class:`~repro.core.server.RoverServer` service table serves both.

Connections are per-request (open, send, read reply, close): simple,
robust against half-dead peers, and faithful to the paper's modest
HTTP-era transport assumptions.  All callbacks are posted to the
:class:`~repro.live.clock.RealTimeClock` loop thread.
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Any, Callable

from repro.live.clock import RealTimeClock
from repro.net.message import MarshalError, marshal, unmarshal
from repro.net.transport import DelayedReply, RpcError, RpcTimeout

_LENGTH = struct.Struct(">I")
MAX_FRAME = 16 * 1024 * 1024


class LiveAddress:
    """Where a live Rover node listens (stands in for a simnet Host)."""

    __slots__ = ("name", "host", "port")

    def __init__(self, name: str, host: str, port: int) -> None:
        self.name = name
        self.host = host
        self.port = port

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LiveAddress {self.name} {self.host}:{self.port}>"


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> bytes:
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if length > MAX_FRAME:
        raise ConnectionError(f"frame of {length} bytes exceeds limit")
    return _recv_exact(sock, length)


class LiveTransport:
    """Serve and issue Rover requests over real TCP."""

    def __init__(
        self,
        clock: RealTimeClock,
        name: str,
        bind_host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.clock = clock
        self.name = name
        self._request_handlers: dict[str, Callable] = {}
        self._next_call_id = 0
        self._id_lock = threading.Lock()
        self.bytes_sent = 0
        self.messages_sent = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((bind_host, port))
        self._listener.listen(16)
        self.address = LiveAddress(name, bind_host, self._listener.getsockname()[1])
        self._closing = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"{name}-accept", daemon=True
        )
        self._accept_thread.start()

    # -- the shared interface -------------------------------------------------

    def register(self, service: str, handler: Callable) -> None:
        """Expose ``handler(body, source)`` under ``service``."""
        self._request_handlers[service] = handler

    def handle_request(self, service: str, body: Any, source: tuple) -> tuple[bool, Any]:
        """Dispatch into the service table (same contract as simulated)."""
        handler = self._request_handlers.get(service)
        if handler is None:
            return False, {"error": f"unknown service {service!r}"}
        try:
            return True, handler(body, source)
        except Exception as exc:
            return False, {"error": f"{type(exc).__name__}: {exc}"}

    def call(
        self,
        dst: LiveAddress,
        service: str,
        body: Any,
        on_reply: Callable[[Any], None],
        on_error: Callable[[RpcError], None],
        timeout: float = 30.0,
    ) -> str:
        """Issue a request; exactly one callback fires, on the loop thread."""
        with self._id_lock:
            call_id = f"{self.name}:{self._next_call_id}"
            self._next_call_id += 1
        envelope = {"kind": "request", "id": call_id, "service": service, "body": body}
        payload = marshal(envelope)

        def worker() -> None:
            try:
                with socket.create_connection(
                    (dst.host, dst.port), timeout=timeout
                ) as sock:
                    sock.settimeout(timeout)
                    _send_frame(sock, payload)
                    raw = _recv_frame(sock)
            except socket.timeout:
                self.clock.post(on_error, RpcTimeout(f"call {call_id} timed out"))
                return
            except OSError as exc:
                self.clock.post(on_error, RpcError(f"call {call_id} failed: {exc}"))
                return
            try:
                reply = unmarshal(raw)
            except MarshalError as exc:
                self.clock.post(on_error, RpcError(f"bad reply: {exc}"))
                return
            if reply.get("ok"):
                self.clock.post(on_reply, reply.get("body"))
            else:
                detail = reply.get("body")
                message = (
                    detail.get("error", "remote error")
                    if isinstance(detail, dict)
                    else str(detail)
                )
                self.clock.post(on_error, RpcError(message))

        self.bytes_sent += len(payload)
        self.messages_sent += 1
        threading.Thread(
            target=worker, name=f"{self.name}-call-{call_id}", daemon=True
        ).start()
        return call_id

    def close(self) -> None:
        """Stop accepting (idempotent; in-flight handlers finish)."""
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass

    # -- server side ------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._serve_connection,
                args=(conn, peer),
                name=f"{self.name}-serve",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket, peer: tuple) -> None:
        try:
            with conn:
                conn.settimeout(30.0)
                raw = _recv_frame(conn)
                envelope = unmarshal(raw)
                if envelope.get("kind") != "request":
                    return
                done = threading.Event()
                outcome: dict[str, Any] = {}

                def execute() -> None:
                    # Handlers run on the loop thread (single-threaded
                    # toolkit state), then we ship the reply from here.
                    ok, reply_body = self.handle_request(
                        envelope.get("service", ""), envelope.get("body"), peer
                    )
                    delay = 0.0
                    if isinstance(reply_body, DelayedReply):
                        delay = reply_body.delay_s
                        reply_body = reply_body.body
                    outcome["reply"] = {
                        "kind": "reply",
                        "id": envelope.get("id"),
                        "ok": ok,
                        "body": reply_body,
                    }
                    outcome["delay"] = delay
                    done.set()

                self.clock.post(execute)
                if not done.wait(timeout=30.0):
                    return
                if outcome.get("delay", 0.0) > 0:
                    import time as _time

                    _time.sleep(outcome["delay"])  # charge compute for real
                _send_frame(conn, marshal(outcome["reply"]))
        except (OSError, ConnectionError, MarshalError):
            return  # broken request: drop the connection
