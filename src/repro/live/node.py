"""Live Rover nodes: unmodified toolkit over real sockets.

:class:`LiveServer` wraps the *same* :class:`~repro.core.server.RoverServer`
used in simulation; :class:`LiveClient` wraps the same
:class:`~repro.core.access_manager.AccessManager`.  Only the substrate
(clock, transport, scheduler) differs.

Limitations of live mode (by design — it is a deployment vehicle, not
the measurement substrate): no SMTP relay route, no server-push
invalidations (poll with ``max_age_s`` instead), and timing assertions
belong on the simulator.
"""

from __future__ import annotations

from typing import Optional

from repro.core.access_manager import AccessManager
from repro.core.conflict import ResolverRegistry
from repro.core.notification import NotificationCenter
from repro.core.object_cache import ObjectCache
from repro.core.operation_log import OperationLog
from repro.core.server import RoverServer
from repro.live.clock import RealTimeClock
from repro.live.scheduler import LiveScheduler
from repro.live.transport import LiveAddress, LiveTransport
from repro.storage.stable_log import FlushModel, StableLog


class LiveServer:
    """A real listening Rover home server."""

    def __init__(
        self,
        authority: str,
        bind_host: str = "127.0.0.1",
        port: int = 0,
        resolvers: Optional[ResolverRegistry] = None,
        clock: Optional[RealTimeClock] = None,
    ) -> None:
        self.clock = clock or RealTimeClock(name=f"{authority}-loop")
        self._owns_clock = clock is None
        self.transport = LiveTransport(self.clock, authority, bind_host, port)
        self.server = RoverServer(
            self.clock, self.transport, authority, resolvers=resolvers
        )

    @property
    def address(self) -> LiveAddress:
        return self.transport.address

    def put_object(self, rdo) -> int:
        return self.server.put_object(rdo)

    def get_object(self, urn: str):
        return self.server.get_object(urn)

    def close(self) -> None:
        self.transport.close()
        if self._owns_clock:
            self.clock.close()


class LiveClient:
    """A real Rover mobile client."""

    def __init__(
        self,
        name: str,
        servers: dict[str, LiveAddress],
        clock: Optional[RealTimeClock] = None,
        auth_token: str = "",
        call_timeout: float = 10.0,
        max_attempts: int = 8,
    ) -> None:
        self.clock = clock or RealTimeClock(name=f"{name}-loop")
        self._owns_clock = clock is None
        self.transport = LiveTransport(self.clock, name)
        self.scheduler = LiveScheduler(
            self.clock,
            self.transport,
            call_timeout=call_timeout,
            max_attempts=max_attempts,
        )
        self.access = AccessManager(
            self.clock,
            self.scheduler,
            servers=dict(servers),
            cache=ObjectCache(clock=lambda: self.clock.now),
            # Real wall-clock flushes would slow the demo; the log is
            # still real (recoverable) — only the *cost model* is free.
            log=OperationLog(StableLog(flush_model=FlushModel.free())),
            notifications=NotificationCenter(),
            auth_token=auth_token,
        )

    def close(self) -> None:
        self.transport.close()
        if self._owns_clock:
            self.clock.close()
