"""Real-time event-loop clock.

Drop-in for the simulator's clock interface (``now``, ``schedule``,
``run_until``) backed by wall-clock time and one loop thread.  The
crucial property carried over from the simulator: **every callback runs
on the single loop thread**, so toolkit state (cache, log, promises)
never sees concurrent mutation.  Network reader threads hand inbound
work to the loop with :meth:`post`.
"""

from __future__ import annotations

import heapq
import threading
import time
import traceback
from typing import Any, Callable


class RealTimeClock:
    """A wall-clock event loop with the simulator clock's interface."""

    def __init__(self, name: str = "rover-loop") -> None:
        self._origin = time.monotonic()
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self._lock = threading.Condition()
        self._running = True
        self.errors: list[str] = []
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)
        self._thread.start()

    # -- clock interface ----------------------------------------------------

    @property
    def now(self) -> float:
        """Seconds since this clock was created."""
        return time.monotonic() - self._origin

    def schedule(self, delay: float, fn: Callable, *args: Any) -> "_Timer":
        """Run ``fn(*args)`` on the loop thread after ``delay`` seconds."""
        timer = _Timer()
        with self._lock:
            heapq.heappush(
                self._heap,
                (self.now + max(0.0, delay), self._seq, self._guard(fn, timer), args),
            )
            self._seq += 1
            self._lock.notify()
        return timer

    def schedule_at(self, when: float, fn: Callable, *args: Any) -> "_Timer":
        return self.schedule(when - self.now, fn, *args)

    def post(self, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` on the loop thread as soon as possible.

        The hand-off point for network reader threads.
        """
        self.schedule(0.0, fn, *args)

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 60.0,
        poll_s: float = 0.005,
    ) -> bool:
        """Block the *calling* thread until the predicate holds.

        Unlike the simulator (which executes events while waiting),
        the loop thread is already running; this merely polls.  Do not
        call from the loop thread itself.
        """
        if threading.current_thread() is self._thread:
            raise RuntimeError("run_until would deadlock the loop thread")
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(poll_s)
        return predicate()

    def close(self) -> None:
        """Stop the loop thread (idempotent)."""
        with self._lock:
            self._running = False
            self._lock.notify()
        self._thread.join(timeout=2.0)

    # -- internals ------------------------------------------------------------

    def _guard(self, fn: Callable, timer: "_Timer") -> Callable:
        def run(*args: Any) -> None:
            if timer.cancelled:
                return
            try:
                fn(*args)
            except Exception:
                # A callback crash must not kill the loop; surface it.
                self.errors.append(traceback.format_exc())

        return run

    def _loop(self) -> None:
        while True:
            with self._lock:
                if not self._running:
                    return
                if not self._heap:
                    self._lock.wait(timeout=0.1)
                    continue
                when, __, fn, args = self._heap[0]
                delay = when - self.now
                if delay > 0:
                    self._lock.wait(timeout=min(delay, 0.1))
                    continue
                heapq.heappop(self._heap)
            fn(*args)  # outside the lock


class _Timer:
    """Cancellable handle for a scheduled callback."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
