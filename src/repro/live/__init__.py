"""Live mode: the same toolkit over real sockets and wall-clock time.

Everything under :mod:`repro.core` is written against three narrow
interfaces — a clock (``now`` / ``schedule`` / ``run_until``), a
transport (``register`` / ``call`` / ``handle_request``), and a
scheduler (``submit`` / ``reprioritize`` / ``cancel``).  The simulation
substrate implements them in virtual time; this package implements them
over **real localhost TCP sockets** and a real-time event loop, so the
*identical* access-manager and server code that reproduces the paper's
tables also runs as an actual networked system:

* :mod:`repro.live.clock` — a single-threaded event-loop clock: every
  callback (timer or inbound message) executes on one loop thread,
  preserving the no-data-races discipline the simulator guarantees;
* :mod:`repro.live.transport` — length-prefixed marshalled frames over
  TCP, with the same service table and request/reply semantics as the
  simulated transport;
* :mod:`repro.live.scheduler` — a queue-draining scheduler with
  priorities, retransmission, and backoff, detecting connectivity by
  socket success/failure;
* :mod:`repro.live.node` — one-call construction of live servers and
  clients wired to the unmodified :class:`~repro.core.server.RoverServer`
  and :class:`~repro.core.access_manager.AccessManager`.

Scope: a deployment/demo vehicle, not the measurement substrate — the
experiments stay on the simulator where timing is exact.
"""

from repro.live.clock import RealTimeClock
from repro.live.node import LiveClient, LiveServer
from repro.live.scheduler import LiveScheduler
from repro.live.transport import LiveTransport

__all__ = [
    "LiveClient",
    "LiveServer",
    "LiveScheduler",
    "LiveTransport",
    "RealTimeClock",
]
