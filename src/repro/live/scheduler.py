"""Queue-draining scheduler over the live transport.

Implements the scheduler interface the access manager consumes
(``submit`` / ``reprioritize`` / ``cancel`` / ``idle`` / ``host``) with
the same semantics as :class:`~repro.net.scheduler.NetworkScheduler`:
priority queues, bounded in-flight window, exponential-backoff
retransmission, terminal failure after ``max_attempts``.  Connectivity
is whatever the sockets say — a refused or timed-out connection counts
as "link down" and backs off; queued work survives until the peer
returns (the QRPC story on a real network).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.live.clock import RealTimeClock
from repro.live.transport import LiveAddress, LiveTransport
from repro.net.scheduler import Priority
from repro.net.transport import RpcError


class _HostShim:
    """Just enough Host for the access manager (name + link list)."""

    __slots__ = ("name", "links")

    def __init__(self, name: str) -> None:
        self.name = name
        self.links: list = []  # no simulated links to watch in live mode


class LiveQueuedMessage:
    """A queued/in-flight live request."""

    __slots__ = (
        "seq", "dst", "service", "body", "priority",
        "on_reply", "on_failed", "attempts", "state",
    )

    def __init__(self, seq, dst, service, body, priority, on_reply, on_failed):
        self.seq = seq
        self.dst = dst
        self.service = service
        self.body = body
        self.priority = priority
        self.on_reply = on_reply
        self.on_failed = on_failed
        self.attempts = 0
        self.state = "queued"

    def sort_key(self) -> tuple[int, int]:
        return (int(self.priority), self.seq)


class LiveScheduler:
    """Priority QRPC drainer over real sockets."""

    def __init__(
        self,
        clock: RealTimeClock,
        transport: LiveTransport,
        max_inflight: int = 4,
        max_attempts: int = 8,
        base_backoff: float = 0.2,
        max_backoff: float = 10.0,
        call_timeout: float = 10.0,
    ) -> None:
        self.sim = clock  # name kept for interface parity
        self.clock = clock
        self.transport = transport
        self.host = _HostShim(transport.name)
        self.max_inflight = max_inflight
        self.max_attempts = max_attempts
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        self.call_timeout = call_timeout
        self._heap: list[tuple[tuple[int, int], LiveQueuedMessage]] = []
        self._seq = 0
        self._inflight = 0
        self.delivered = 0
        self.failed = 0
        self.retransmissions = 0

    # All mutation happens on the clock's loop thread: submit() posts.

    def submit(
        self,
        dst: LiveAddress,
        service: str,
        body: Any,
        priority: Priority = Priority.DEFAULT,
        on_reply: Optional[Callable[[Any], None]] = None,
        on_failed: Optional[Callable[[str], None]] = None,
        size_hint: int = 0,
        route_preference: Any = None,
    ) -> LiveQueuedMessage:
        message = LiveQueuedMessage(
            seq=self._seq,
            dst=dst,
            service=service,
            body=body,
            priority=priority,
            on_reply=on_reply or (lambda body: None),
            on_failed=on_failed or (lambda reason: None),
        )
        self._seq += 1

        def enqueue() -> None:
            heapq.heappush(self._heap, (message.sort_key(), message))
            self._pump()

        self.clock.post(enqueue)
        return message

    def cancel(self, message: LiveQueuedMessage) -> bool:
        if message.state != "queued":
            return False
        message.state = "cancelled"
        return True

    def reprioritize(self, message: LiveQueuedMessage, priority: Priority) -> bool:
        if message.state != "queued":
            return False
        message.priority = priority

        def reheap() -> None:
            self._heap = [(m.sort_key(), m) for __, m in self._heap if m.state == "queued"]
            heapq.heapify(self._heap)
            self._pump()

        self.clock.post(reheap)
        return True

    def queue_length(self) -> int:
        return sum(1 for __, m in self._heap if m.state == "queued")

    @property
    def inflight(self) -> int:
        return self._inflight

    def idle(self) -> bool:
        return self._inflight == 0 and self.queue_length() == 0

    # -- internals (loop thread only) -----------------------------------------

    def _pump(self) -> None:
        while self._inflight < self.max_inflight and self._heap:
            __, message = heapq.heappop(self._heap)
            if message.state != "queued":
                continue
            self._dispatch(message)

    def _dispatch(self, message: LiveQueuedMessage) -> None:
        message.state = "inflight"
        message.attempts += 1
        if message.attempts > 1:
            self.retransmissions += 1
        self._inflight += 1

        def on_reply(body: Any) -> None:
            if message.state != "inflight":
                return
            message.state = "done"
            self._inflight -= 1
            self.delivered += 1
            message.on_reply(body)
            self._pump()

        def on_error(error: RpcError) -> None:
            if message.state != "inflight":
                return
            self._inflight -= 1
            if message.attempts >= self.max_attempts:
                message.state = "done"
                self.failed += 1
                message.on_failed(str(error))
            else:
                message.state = "queued"
                backoff = min(
                    self.max_backoff, self.base_backoff * (2 ** (message.attempts - 1))
                )
                self.clock.schedule(backoff, self._requeue, message)
            self._pump()

        self.transport.call(
            message.dst,
            message.service,
            message.body,
            on_reply=on_reply,
            on_error=on_error,
            timeout=self.call_timeout,
        )

    def _requeue(self, message: LiveQueuedMessage) -> None:
        if message.state != "queued":
            return
        heapq.heappush(self._heap, (message.sort_key(), message))
        self._pump()
