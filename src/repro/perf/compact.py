"""Operation-log compaction — coalesce queued QRPCs before they hit the wire.

Rover's log drains every queued operation verbatim on reconnection, so a
user who marks a message read and then deletes it pays for two round
trips over a 14.4 modem when one (or zero) would do.  This module is the
application-pluggable coalescing engine: apps register *pair rules*
(examined over adjacent operations on the same object) and *rewrite
rules* (examined per surviving operation), and the
:class:`~repro.core.access_manager.AccessManager` asks the compactor for
a :class:`CompactionPlan` both at queue time and when a link comes back
up, right before the drain.

Soundness rules the engine enforces structurally:

* Only *eligible* operations are touched — the caller's predicate
  admits exactly the requests that have never been dispatched to the
  server (scheduler state ``queued``, created this incarnation).  A
  request the server may have seen is a **barrier**: nothing pairs
  across it, so reordering semantics relative to the server are
  preserved.
* Pairing is adjacent-only within the per-URN subsequence.  Rules never
  see operations on different objects and never skip over an
  intervening operation on the same object.
* The plan is advisory: the access manager re-checks that each dropped
  request is still cancellable before acting, and the stable log is
  rewritten (ack markers + fresh records) so crash recovery replays
  exactly the compacted sequence.

Outcomes a pair rule may return for ``(earlier, later)``:

* :class:`Absorb` — the later operation subsumes the earlier
  (overwrite-absorbs-overwrite).  The earlier is dropped; its
  observers are resolved with the later's eventual outcome.
* :class:`Merge` — the two fold into one: the earlier is dropped and
  the later's args are rewritten (append-merge).
* :class:`CancelOut` — the pair annihilates (create+delete).  Both are
  dropped and their observers get the supplied synthetic replies,
  shaped like the server replies they would have seen.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

from repro.core.qrpc import Operation, QRPCRequest
from repro.lint.contracts import replay_pure


# -- pair-rule outcomes ---------------------------------------------------------


@dataclass(frozen=True)
class Absorb:
    """Drop the earlier request; its observers follow the later's outcome."""


@dataclass(frozen=True)
class Merge:
    """Drop the earlier request; the later survives with ``args``."""

    args: dict


@dataclass(frozen=True)
class CancelOut:
    """Drop both requests, resolving observers with synthetic replies."""

    earlier_reply: dict
    later_reply: dict


Outcome = Absorb | Merge | CancelOut


class PairRule:
    """Examines an adjacent per-URN pair; returns an outcome or ``None``."""

    @replay_pure
    def match(self, earlier: QRPCRequest, later: QRPCRequest) -> Optional[Outcome]:
        raise NotImplementedError


class RewriteRule:
    """Examines a single surviving request; returns new args or ``None``."""

    @replay_pure
    def rewrite(self, request: QRPCRequest) -> Optional[dict]:
        raise NotImplementedError


# -- the plan -------------------------------------------------------------------


@dataclass
class CompactionPlan:
    """What the engine decided; the access manager executes it.

    ``drops`` maps each absorbed/merged request to the id of the
    surviving request whose outcome its observers should follow.
    ``cancels`` pairs each annihilated request with the synthetic reply
    its observers receive.  ``rewrites`` carries new args for surviving
    requests (from :class:`Merge` outcomes and rewrite rules).
    """

    drops: list[tuple[QRPCRequest, str]] = field(default_factory=list)
    cancels: list[tuple[QRPCRequest, dict]] = field(default_factory=list)
    rewrites: dict[str, dict] = field(default_factory=dict)

    @property
    def ops_removed(self) -> int:
        return len(self.drops) + len(self.cancels)

    @property
    def is_empty(self) -> bool:
        return not (self.drops or self.cancels or self.rewrites)


class Compactor:
    """Holds the registered rules and plans compactions over a pending list."""

    def __init__(self) -> None:
        self.pair_rules: list[PairRule] = []
        self.rewrite_rules: list[RewriteRule] = []

    def add_pair_rule(self, rule: PairRule) -> "Compactor":
        self.pair_rules.append(rule)
        return self

    def add_rewrite_rule(self, rule: RewriteRule) -> "Compactor":
        self.rewrite_rules.append(rule)
        return self

    def _match(self, earlier: QRPCRequest, later: QRPCRequest) -> Optional[Outcome]:
        for rule in self.pair_rules:
            outcome = rule.match(earlier, later)
            if outcome is not None:
                return outcome
        return None

    def plan(
        self,
        requests: list[QRPCRequest],
        eligible: Callable[[QRPCRequest], bool],
    ) -> CompactionPlan:
        """Plan a compaction of ``requests`` (in logical queue order).

        ``eligible`` admits requests that are safe to touch; anything it
        rejects acts as a barrier for its URN.
        """
        plan = CompactionPlan()
        # Per-URN most recent *surviving eligible* request, with its
        # effective (possibly merged) args.
        last: dict[str, tuple[QRPCRequest, dict]] = {}
        for request in requests:
            urn = request.urn
            if not eligible(request):
                last.pop(urn, None)
                continue
            prev = last.get(urn)
            if prev is not None:
                prev_request, prev_args = prev
                earlier = (
                    prev_request
                    if prev_args is prev_request.args
                    else replace(prev_request, args=prev_args)
                )
                outcome = self._match(earlier, request)
                if isinstance(outcome, Absorb):
                    plan.drops.append((prev_request, request.request_id))
                    plan.rewrites.pop(prev_request.request_id, None)
                    last[urn] = (request, request.args)
                    continue
                if isinstance(outcome, Merge):
                    plan.drops.append((prev_request, request.request_id))
                    plan.rewrites.pop(prev_request.request_id, None)
                    plan.rewrites[request.request_id] = outcome.args
                    last[urn] = (request, outcome.args)
                    continue
                if isinstance(outcome, CancelOut):
                    plan.cancels.append((prev_request, outcome.earlier_reply))
                    plan.cancels.append((request, outcome.later_reply))
                    plan.rewrites.pop(prev_request.request_id, None)
                    last.pop(urn, None)
                    continue
            last[urn] = (request, request.args)

        removed = {req.request_id for req, _ in plan.drops}
        removed.update(req.request_id for req, _ in plan.cancels)
        for request in requests:
            if request.request_id in removed or not eligible(request):
                continue
            args = plan.rewrites.get(request.request_id, request.args)
            effective = (
                request if args is request.args else replace(request, args=args)
            )
            for rule in self.rewrite_rules:
                new_args = rule.rewrite(effective)
                if new_args is not None:
                    plan.rewrites[request.request_id] = new_args
                    effective = replace(request, args=new_args)
        return plan


# -- generic rules apps compose -------------------------------------------------


def _invoke_key(request: QRPCRequest, index: Optional[int]) -> Any:
    """Identity argument of an INVOKE at positional ``index`` (marker if absent)."""
    if index is None:
        return None
    args = request.args.get("args") or []
    return args[index] if len(args) > index else _MISSING


_MISSING = object()


class InvokeAbsorb(PairRule):
    """Later invoke of ``method`` makes an earlier one redundant.

    The earlier's method must be in ``absorbs`` (defaults to just
    ``method``), and when ``key`` is given the positional argument at
    that index — the entity identifier — must match on both sides.
    Covers both overwrite-absorbs-overwrite (``move_event`` twice for
    one event) and idempotent duplicates (``mark_read`` twice).
    """

    def __init__(
        self,
        method: str,
        absorbs: Optional[set[str]] = None,
        key: Optional[int] = None,
    ) -> None:
        self.method = method
        self.absorbs = set(absorbs) if absorbs is not None else {method}
        self.key = key

    def match(self, earlier: QRPCRequest, later: QRPCRequest) -> Optional[Outcome]:
        if earlier.operation is not Operation.INVOKE or later.operation is not Operation.INVOKE:
            return None
        if later.args.get("method") != self.method:
            return None
        if earlier.args.get("method") not in self.absorbs:
            return None
        if self.key is not None:
            a = _invoke_key(earlier, self.key)
            b = _invoke_key(later, self.key)
            if a is _MISSING or b is _MISSING or a != b:
                return None
        return Absorb()


class AppendMerge(PairRule):
    """Adjacent appends to one object fold into a single batched invoke.

    ``method`` appends one item (first positional arg); ``batch_method``
    appends a list of items.  Either shape matches on either side, so a
    long run of appends folds left into one growing batch.
    """

    def __init__(self, method: str, batch_method: str) -> None:
        self.method = method
        self.batch_method = batch_method

    def _items(self, request: QRPCRequest) -> Optional[list]:
        name = request.args.get("method")
        args = request.args.get("args") or []
        if not args:
            return None
        if name == self.method:
            return [args[0]]
        if name == self.batch_method:
            value = args[0]
            return list(value) if isinstance(value, list) else None
        return None

    def match(self, earlier: QRPCRequest, later: QRPCRequest) -> Optional[Outcome]:
        if earlier.operation is not Operation.INVOKE or later.operation is not Operation.INVOKE:
            return None
        head = self._items(earlier)
        tail = self._items(later)
        if head is None or tail is None:
            return None
        return Merge({"method": self.batch_method, "args": [head + tail]})


class CreateDeleteCancel(PairRule):
    """A queued create followed by its delete annihilates.

    ``key`` indexes the positional argument identifying the entity on
    both sides.  The synthetic replies mimic what the server would have
    said for each half (``result`` values via the factories; no
    ``version`` key, because no server write ever happens).
    """

    def __init__(
        self,
        create_method: str,
        delete_method: str,
        key: int = 0,
        create_result: Callable[[QRPCRequest], Any] = lambda request: True,
        delete_result: Callable[[QRPCRequest], Any] = lambda request: True,
    ) -> None:
        self.create_method = create_method
        self.delete_method = delete_method
        self.key = key
        self.create_result = create_result
        self.delete_result = delete_result

    def match(self, earlier: QRPCRequest, later: QRPCRequest) -> Optional[Outcome]:
        if earlier.operation is not Operation.INVOKE or later.operation is not Operation.INVOKE:
            return None
        if earlier.args.get("method") != self.create_method:
            return None
        if later.args.get("method") != self.delete_method:
            return None
        a = _invoke_key(earlier, self.key)
        b = _invoke_key(later, self.key)
        if a is _MISSING or b is _MISSING or a != b:
            return None
        return CancelOut(
            {"status": "ok", "result": self.create_result(earlier), "compacted": True},
            {"status": "ok", "result": self.delete_result(later), "compacted": True},
        )


class DuplicateImportCoalesce(PairRule):
    """Two queued imports of the same object need only one fetch."""

    def match(self, earlier: QRPCRequest, later: QRPCRequest) -> Optional[Outcome]:
        if earlier.operation is Operation.IMPORT and later.operation is Operation.IMPORT:
            return Absorb()
        return None


class CallableRewrite(RewriteRule):
    """Adapter: any ``request -> args|None`` callable as a rewrite rule."""

    def __init__(self, fn: Callable[[QRPCRequest], Optional[dict]]) -> None:
        self.fn = fn

    def rewrite(self, request: QRPCRequest) -> Optional[dict]:
        return self.fn(request)
