"""repro.perf — communication-cost optimizations for weakly-connected links.

Three cooperating mechanisms, each independently switchable:

* **Operation-log compaction** (:mod:`repro.perf.compact`) — coalesce
  the never-dispatched suffix of the QRPC log (overwrite absorbs
  overwrite, appends merge, create+delete cancel out) at queue time and
  before reconnection drain, with a durable stable-log rewrite.
* **Delta object shipping** (:mod:`repro.perf.delta`) — imports and
  exports negotiate a marshalled structural diff against the base
  version each side already holds, falling back to a full ship on any
  miss or mismatch.
* **Marshal fast-path** (:class:`repro.net.message.Premarshalled`) —
  QRPC bodies are marshalled once at submit; size accounting and
  transmission splice the cached bytes instead of re-encoding.

See ``docs/PERFORMANCE.md`` for the protocol details and the counters
(`log_ops_compacted_total`, `ship_delta_bytes_saved_total`,
`marshal_cache_hits_total`), and benchmark E14 for the effect on
bytes-on-wire and reconnection drain time over CSLIP links.
"""

from repro.perf.compact import (
    Absorb,
    AppendMerge,
    CallableRewrite,
    CancelOut,
    CompactionPlan,
    Compactor,
    CreateDeleteCancel,
    DuplicateImportCoalesce,
    InvokeAbsorb,
    Merge,
    PairRule,
    RewriteRule,
)
from repro.perf.delta import (
    DeltaError,
    apply_delta,
    delta_size,
    diff_value,
    worth_shipping,
)

__all__ = [
    "Absorb",
    "AppendMerge",
    "CallableRewrite",
    "CancelOut",
    "CompactionPlan",
    "Compactor",
    "CreateDeleteCancel",
    "DeltaError",
    "DuplicateImportCoalesce",
    "InvokeAbsorb",
    "Merge",
    "PairRule",
    "RewriteRule",
    "apply_delta",
    "delta_size",
    "diff_value",
    "worth_shipping",
]
