"""Structural deltas — ship what changed, not the whole object.

On a 14.4 modem, re-shipping a 2 KB folder because one flag flipped is
the dominant cost of weak connectivity.  This module computes a
marshallable *structural diff* between two values and applies it on the
far side:

* the client's :class:`~repro.core.object_cache.ObjectCache` keeps the
  marshalled bytes of the base version it holds;
* exports send ``{"delta", "base_version"}`` instead of ``{"data"}``
  when the delta is smaller, and the server reconstructs the full value
  from its version history;
* imports send ``have_version`` and the server answers with a delta
  against that base when it still has it.

Either side falls back to a full ship on a history miss (the server
replies ``need-full``; the client re-imports without a base) — the
delta protocol is an optimization, never a correctness dependency.

Delta wire format (a single-key dict, one-character tags):

* ``{"=": 1}`` — identical (byte-for-byte under :func:`marshal`);
* ``{"!": value}`` — replace wholesale;
* ``{"l": suffix}`` — list append: ``new == base + suffix``;
* ``{"d": [keys, edits]}`` — dict edit: ``keys`` is the *final* key
  order (marshalling is insertion-order-sensitive, so the order must
  travel), ``edits`` maps changed/new keys to sub-deltas; unchanged
  keys are copied from the base.
"""

from __future__ import annotations

from typing import Any

from repro.net.message import MarshalError, marshal, marshalled_size


class DeltaError(Exception):
    """A delta could not be applied to the given base."""


def _same(a: Any, b: Any) -> bool:
    """Byte-level equality under marshal.

    Plain ``==`` is too loose (``True == 1``) for a protocol whose
    coherence checks compare marshalled bytes; two values are "the
    same" only if they encode identically.
    """
    try:
        return marshal(a) == marshal(b)
    except MarshalError:
        return False


def diff_value(base: Any, new: Any) -> dict:
    """Delta that transforms ``base`` into ``new``.

    Always returns a valid delta; the worst case is a wholesale
    replace.  Callers compare :func:`delta_size` against the full value
    and only put the delta on the wire when it is actually smaller.
    """
    if _same(base, new):
        return {"=": 1}
    if isinstance(base, dict) and isinstance(new, dict):
        edits: dict[Any, Any] = {}
        for key, value in new.items():
            if key not in base:
                edits[key] = {"!": value}
            elif not _same(base[key], value):
                edits[key] = diff_value(base[key], value)
        return {"d": [list(new.keys()), edits]}
    if isinstance(base, list) and isinstance(new, list):
        if len(new) >= len(base) and _same(new[: len(base)], base):
            return {"l": new[len(base):]}
        return {"!": new}
    return {"!": new}


def apply_delta(base: Any, delta: Any) -> Any:
    """Reconstruct the new value from ``base`` and a delta.

    Raises :class:`DeltaError` when the delta does not fit the base
    (e.g. it references a key the base lacks) — callers treat that as
    a base mismatch and fall back to a full ship.
    """
    if not isinstance(delta, dict) or len(delta) != 1:
        raise DeltaError(f"malformed delta: {delta!r}")
    if "=" in delta:
        return base
    if "!" in delta:
        return delta["!"]
    if "l" in delta:
        if not isinstance(base, list):
            raise DeltaError("list-append delta against a non-list base")
        return base + list(delta["l"])
    if "d" in delta:
        if not isinstance(base, dict):
            raise DeltaError("dict delta against a non-dict base")
        keys, edits = delta["d"]
        result: dict[Any, Any] = {}
        for key in keys:
            if key in edits:
                sub = edits[key]
                if isinstance(sub, dict) and "!" in sub and len(sub) == 1:
                    result[key] = sub["!"]
                else:
                    if key not in base:
                        raise DeltaError(f"delta edits key {key!r} missing from base")
                    result[key] = apply_delta(base[key], sub)
            else:
                if key not in base:
                    raise DeltaError(f"delta keeps key {key!r} missing from base")
                result[key] = base[key]
        return result
    raise DeltaError(f"unknown delta tag in {delta!r}")


def delta_size(delta: Any) -> int:
    """Marshalled size of a delta (what the wire would carry)."""
    return marshalled_size(delta)


def worth_shipping(delta: Any, full_value: Any, margin: int = 0) -> bool:
    """True when the delta is strictly smaller than the full value.

    ``margin`` charges the delta for protocol overhead (extra reply
    keys etc.) so a break-even delta does not displace the simpler
    full ship.
    """
    return delta_size(delta) + margin < marshalled_size(full_value)
