"""Discrete-event simulation kernel.

The Rover reproduction runs on virtual time: network transfers over a
2.4 Kbit/s modem complete in microseconds of real time while preserving
the exact latency/bandwidth arithmetic of the paper's testbed.  The
kernel is deliberately tiny: a time-ordered event queue
(:class:`Simulator`), generator-based processes (:meth:`Simulator.spawn`)
for scripted actors, and waitable signals (:class:`Signal`).
"""

from repro.sim.events import Event, SimulationError, Simulator
from repro.sim.process import Process, ProcessKilled, Signal, Waitable, spawn
from repro.sim.rng import make_rng

__all__ = [
    "Event",
    "Process",
    "ProcessKilled",
    "Signal",
    "SimulationError",
    "Simulator",
    "Waitable",
    "make_rng",
    "spawn",
]
