"""Event queue and virtual clock.

A :class:`Simulator` owns the virtual clock and the pending-event
structure.  Events scheduled for the same instant fire in the order
they were scheduled (FIFO tie-break on arrival order), which makes
every run of a seeded scenario bit-for-bit deterministic.

CPU hot path (repro.speed)
--------------------------

The kernel is a *timer wheel over exact instants*: a heap of distinct
timestamps fronting per-instant FIFO buckets.  Two workload facts make
this the right shape for Rover traffic:

* **Same-instant batches dominate.**  A reconnection drain delivers
  bursts of frames at identical virtual instants (a serial line frees
  at one time, a bucketed flush completes at one time).  Scheduling
  into an existing bucket is a list append — no heap operation, no
  ``Event`` comparisons — so a k-frame batch costs one heap push for
  the instant plus k appends instead of k pushes.

* **Most timers never fire.**  Retransmit and RPC-timeout timers are
  cancelled when the reply lands, which is almost always.  Cancellation
  is O(1): the event is only *marked* dead and skipped when its bucket
  drains.  (The previous kernel removed the event eagerly with an O(n)
  ``list.remove`` plus a full ``heapify`` — 60%+ of a large drain's CPU
  time went there.)  When cancelled corpses exceed half the queue the
  kernel compacts, so cancel-heavy chaos runs stay O(live events) in
  memory — see :meth:`Simulator._maybe_compact`.

Both changes preserve the observable order exactly: buckets replay the
schedule order that the old per-event seq numbers encoded, and lazily
cancelled events were already invisible to callbacks.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. scheduling in the past)."""


class Event:
    """Handle for a scheduled callback.

    Holding the handle allows cancellation via :meth:`Simulator.cancel`
    or :meth:`cancel`.  Cancellation is O(1): the event stays queued
    but marked dead, is skipped when its instant fires, and is swept
    out wholesale when dead events outnumber live ones (cancel-heavy
    workloads — e.g. retransmit timers in long chaos runs — would
    otherwise grow the queue without bound).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        # Release the payload now: a cancelled retransmit timer may be
        # the only reference keeping a large frame alive until sweep.
        self.fn = _noop
        self.args = ()
        sim = self._sim
        if sim is not None:
            sim._note_cancel(self)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state} {self.fn!r}>"


def _noop() -> None:  # pragma: no cover - never actually invoked
    return None


class _Bucket:
    """FIFO of events sharing one exact virtual instant.

    ``head`` indexes the next unfired event; consumed entries are left
    in place (no O(n) pops from the front) and the whole bucket is
    dropped once drained.
    """

    __slots__ = ("events", "head")

    def __init__(self) -> None:
        self.events: list[Event] = []
        self.head = 0


class Simulator:
    """Discrete-event simulator with a virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, print, "fires at t=1.5")
        sim.run()
    """

    #: Compaction trigger: sweep when cancelled entries exceed this
    #: many *and* outnumber live ones (the >50% dead ratio).
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        #: Heap of distinct instants that have a bucket.
        self._times: list[float] = []
        #: instant -> FIFO bucket of events at that instant.
        self._buckets: dict[float, _Bucket] = {}
        self._seq = 0
        self._now = 0.0
        self._running = False
        #: Queued events that are neither fired nor cancelled.
        self._live = 0
        #: Queued events that were cancelled but not yet swept/skipped.
        self._cancelled = 0
        #: Lifetime count of compaction sweeps (observability).
        self.compactions = 0
        #: Pluggable resolver for enumerable decision points (see
        #: :meth:`decide`).  ``None`` means every decision takes its
        #: first alternative — the plain deterministic run.
        self.decision_provider: Optional[Callable[[int, dict], int]] = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def decide(self, n_alternatives: int, meta: Optional[dict] = None) -> int:
        """Resolve an enumerable decision point.

        Components with several legal behaviours at one instant (deliver
        vs. drop a frame, crash vs. survive a log flush) call this
        instead of drawing from an RNG.  With no
        :attr:`decision_provider` installed the first alternative (index
        0, the fault-free default) is always taken, so ordinary runs
        stay bit-for-bit deterministic and fault-free.  A model checker
        (:mod:`repro.check`) installs a provider that enumerates the
        alternatives systematically.

        ``meta`` describes the decision point (for pruning and trace
        readability); it is advisory and must not affect semantics.
        """
        if n_alternatives <= 1 or self.decision_provider is None:
            return 0
        choice = self.decision_provider(n_alternatives, meta or {})
        if not 0 <= choice < n_alternatives:
            raise SimulationError(
                f"decision provider chose {choice} of {n_alternatives} alternatives"
            )
        return choice

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time, self._seq, fn, args, sim=self)
        self._seq += 1
        bucket = self._buckets.get(time)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[time] = bucket
            heappush(self._times, time)
        bucket.events.append(event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        event.cancel()

    def _note_cancel(self, event: Event) -> None:
        """Bookkeeping for a lazy cancellation (called by Event.cancel)."""
        self._live -= 1
        self._cancelled += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Sweep cancelled corpses once they exceed half the queue.

        Rebuilds every bucket's unfired tail without its cancelled
        entries, drops now-empty buckets, and re-heapifies the instant
        heap.  Amortized O(1) per cancellation: a sweep costs O(queue)
        but at least half of what it scans is freed.
        """
        if (
            self._cancelled <= self.COMPACT_MIN_CANCELLED
            or self._cancelled <= self._live
        ):
            return
        buckets = self._buckets
        survivors: dict[float, _Bucket] = {}
        for time, bucket in buckets.items():
            events = bucket.events
            head = bucket.head
            keep = (
                [e for e in events[head:] if not e.cancelled]
                if head or self._cancelled
                else events
            )
            if keep:
                fresh = _Bucket()
                fresh.events = keep
                survivors[time] = fresh
        self._buckets = survivors
        self._times = list(survivors.keys())
        heapify(self._times)
        self._cancelled = 0
        self.compactions += 1

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    def queued(self) -> int:
        """Physical queue size: live events plus unswept cancelled corpses.

        Test/diagnostic surface for the lazy-cancel kernel — a drained
        simulation must report 0, and cancel-heavy runs must stay close
        to :meth:`pending` (the compaction bound).
        """
        total = 0
        for bucket in self._buckets.values():
            total += len(bucket.events) - bucket.head
        return total

    def _pop_next(self, until: Optional[float]) -> Optional[Event]:
        """Consume and return the earliest live event.

        Returns ``None`` when the queue is drained or the next live
        event lies strictly beyond ``until`` (which is then left
        queued).  Cancelled corpses encountered on the way are swept.
        """
        times = self._times
        while times:
            time = times[0]
            bucket = self._buckets.get(time)
            if bucket is None:  # stale instant left behind by a sweep
                heappop(times)
                continue
            events = bucket.events
            head = bucket.head
            n = len(events)
            while head < n and events[head].cancelled:
                head += 1
                self._cancelled -= 1
            bucket.head = head
            if head == n:
                del self._buckets[time]
                heappop(times)
                continue
            if until is not None and time > until:
                return None
            event = events[head]
            bucket.head = head + 1
            self._live -= 1
            if bucket.head == n:
                # Drop the drained bucket *before* the callback runs so
                # a same-instant reschedule starts a fresh bucket.
                del self._buckets[time]
                heappop(times)
            return event
        return None

    def step(self) -> bool:
        """Run the single earliest pending event.

        Returns ``False`` when the queue is empty (time does not
        advance), ``True`` otherwise.
        """
        event = self._pop_next(None)
        if event is None:
            return False
        self._now = event.time
        event.fn(*event.args)
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Run events until the queue drains or ``until`` is reached.

        When ``until`` is given, events at times strictly greater than
        it are left queued and the clock is advanced exactly to
        ``until``.  Returns the number of events executed.  Raises
        :class:`SimulationError` after ``max_events`` as a runaway
        guard.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while True:
                if executed >= max_events and self._peek_live(until):
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a runaway loop"
                    )
                event = self._pop_next(until)
                if event is None:
                    break
                self._now = event.time
                event.fn(*event.args)
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return executed

    def _peek_live(self, until: Optional[float]) -> bool:
        """True when a live event at time <= ``until`` is queued."""
        times = self._times
        while times:
            time = times[0]
            bucket = self._buckets.get(time)
            if bucket is None:
                heappop(times)
                continue
            events = bucket.events
            head = bucket.head
            n = len(events)
            while head < n and events[head].cancelled:
                head += 1
                self._cancelled -= 1
            bucket.head = head
            if head == n:
                del self._buckets[time]
                heappop(times)
                continue
            return until is None or time <= until
        return False

    def spawn(self, gen: Any, name: str = "") -> Any:
        """Start a generator as a simulated process (see :mod:`repro.sim.process`)."""
        from repro.sim.process import Process

        return Process(self, gen, name=name)

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 1e9,
        max_events: int = 10_000_000,
    ) -> bool:
        """Run until ``predicate()`` is true.

        Returns ``True`` if the predicate was satisfied, ``False`` if
        the event queue drained or the virtual ``timeout`` elapsed
        first.  The predicate is checked after every event.
        """
        deadline = self._now + timeout
        executed = 0
        if predicate():
            return True
        while True:
            if executed >= max_events and self._peek_live(deadline):
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a runaway loop"
                )
            event = self._pop_next(deadline)
            if event is None:
                return predicate()
            self._now = event.time
            event.fn(*event.args)
            executed += 1
            if predicate():
                return True
