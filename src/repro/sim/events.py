"""Event queue and virtual clock.

A :class:`Simulator` owns the virtual clock and a heap of pending
events.  Events scheduled for the same instant fire in the order they
were scheduled (FIFO tie-break on a monotonically increasing sequence
number), which makes every run of a seeded scenario bit-for-bit
deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. scheduling in the past)."""


class Event:
    """Handle for a scheduled callback.

    Holding the handle allows cancellation via :meth:`Simulator.cancel`
    or :meth:`cancel`.  Cancellation removes the event from its
    simulator's heap immediately, so a drained simulation holds no dead
    events — ``run()`` after cancellation terminates instead of
    stepping over corpses (e.g. RPC timeout timers whose reply already
    arrived).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._discard(self)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state} {self.fn!r}>"


class Simulator:
    """Discrete-event simulator with a virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, print, "fires at t=1.5")
        sim.run()
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        #: Pluggable resolver for enumerable decision points (see
        #: :meth:`decide`).  ``None`` means every decision takes its
        #: first alternative — the plain deterministic run.
        self.decision_provider: Optional[Callable[[int, dict], int]] = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def decide(self, n_alternatives: int, meta: Optional[dict] = None) -> int:
        """Resolve an enumerable decision point.

        Components with several legal behaviours at one instant (deliver
        vs. drop a frame, crash vs. survive a log flush) call this
        instead of drawing from an RNG.  With no
        :attr:`decision_provider` installed the first alternative (index
        0, the fault-free default) is always taken, so ordinary runs
        stay bit-for-bit deterministic and fault-free.  A model checker
        (:mod:`repro.check`) installs a provider that enumerates the
        alternatives systematically.

        ``meta`` describes the decision point (for pruning and trace
        readability); it is advisory and must not affect semantics.
        """
        if n_alternatives <= 1 or self.decision_provider is None:
            return 0
        choice = self.decision_provider(n_alternatives, meta or {})
        if not 0 <= choice < n_alternatives:
            raise SimulationError(
                f"decision provider chose {choice} of {n_alternatives} alternatives"
            )
        return choice

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time, self._seq, fn, args, sim=self)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        event.cancel()

    def _discard(self, event: Event) -> None:
        """Remove a cancelled event from the heap (called by Event.cancel)."""
        try:
            self._queue.remove(event)
        except ValueError:
            return  # already popped (it is firing right now) or never queued
        heapq.heapify(self._queue)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def step(self) -> bool:
        """Run the single earliest pending event.

        Returns ``False`` when the queue is empty (time does not
        advance), ``True`` otherwise.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Run events until the queue drains or ``until`` is reached.

        When ``until`` is given, events at times strictly greater than
        it are left queued and the clock is advanced exactly to
        ``until``.  Returns the number of events executed.  Raises
        :class:`SimulationError` after ``max_events`` as a runaway
        guard.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                if executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a runaway loop"
                    )
                heapq.heappop(self._queue)
                self._now = head.time
                head.fn(*head.args)
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return executed

    def spawn(self, gen: Any, name: str = "") -> Any:
        """Start a generator as a simulated process (see :mod:`repro.sim.process`)."""
        from repro.sim.process import Process

        return Process(self, gen, name=name)

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 1e9,
        max_events: int = 10_000_000,
    ) -> bool:
        """Run until ``predicate()`` is true.

        Returns ``True`` if the predicate was satisfied, ``False`` if
        the event queue drained or the virtual ``timeout`` elapsed
        first.  The predicate is checked after every event.
        """
        deadline = self._now + timeout
        executed = 0
        if predicate():
            return True
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > deadline:
                return False
            if executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a runaway loop"
                )
            heapq.heappop(self._queue)
            self._now = head.time
            head.fn(*head.args)
            executed += 1
            if predicate():
                return True
        return predicate()
