"""Generator-based simulated processes.

Scripted actors (a user clicking through web pages, a mail reader
session) are most naturally written as sequential code that sleeps and
waits.  A :class:`Process` wraps a generator; the generator yields

* a ``float``/``int`` — sleep that many virtual seconds, or
* any :class:`Waitable` (e.g. a QRPC promise or a :class:`Signal`) —
  suspend until it fires.

The yielded waitable's result (if any) is sent back into the generator.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim.events import SimulationError, Simulator


class ProcessKilled(Exception):
    """Injected into a process generator when it is killed."""


class Waitable:
    """Minimal interface a process may yield on.

    A waitable is *done* or not; when it becomes done it invokes every
    registered callback exactly once with itself as the argument.
    Callbacks registered after completion fire immediately.
    """

    def __init__(self) -> None:
        self._done = False
        self._callbacks: list[Callable[["Waitable"], None]] = []
        self._value: Any = None

    @property
    def is_done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        return self._value

    def add_callback(self, fn: Callable[["Waitable"], None]) -> None:
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def fire(self, value: Any = None) -> None:
        """Mark done and notify waiters (idempotent; later fires ignored)."""
        if self._done:
            return
        self._done = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class Signal(Waitable):
    """A one-shot event processes can wait on and code can trigger."""


class Process:
    """A running simulated process.

    Create via :func:`spawn`.  The process itself is a
    :class:`Waitable` target: ``yield process`` waits for it to finish,
    and :attr:`result` holds the generator's return value.
    """

    def __init__(self, sim: Simulator, gen: Generator[Any, Any, Any], name: str = ""):
        self.sim = sim
        self.name = name
        self._gen = gen
        self._finished = Signal()
        self._alive = True
        self.result: Any = None
        self.error: Optional[BaseException] = None
        # Kick off on the next tick so spawn order does not skew
        # same-instant determinism relative to other scheduled work.
        sim.schedule(0.0, self._advance, None)

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def finished(self) -> Signal:
        """Waitable that fires when the process exits."""
        return self._finished

    @property
    def is_done(self) -> bool:
        return self._finished.is_done

    def add_callback(self, fn: Callable[[Waitable], None]) -> None:
        self._finished.add_callback(fn)

    def kill(self) -> None:
        """Terminate the process by throwing :class:`ProcessKilled` into it."""
        if not self._alive:
            return
        self._alive = False
        try:
            self._gen.throw(ProcessKilled())
        except (ProcessKilled, StopIteration):
            pass
        finally:
            self._gen.close()
            self._finished.fire(None)

    def _advance(self, send_value: Any) -> None:
        if not self._alive:
            return
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self._alive = False
            self.result = stop.value
            self._finished.fire(stop.value)
            return
        except ProcessKilled:
            self._alive = False
            self._finished.fire(None)
            return
        self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(f"process {self.name!r} slept {yielded} < 0")
            self.sim.schedule(float(yielded), self._advance, None)
        elif hasattr(yielded, "add_callback"):
            yielded.add_callback(lambda w: self._advance(getattr(w, "value", None)))
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {yielded!r}; "
                "yield a delay (seconds) or a waitable"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "finished"
        return f"<Process {self.name!r} {state}>"


def spawn(sim: Simulator, gen: Generator[Any, Any, Any], name: str = "") -> Process:
    """Start a generator as a simulated process."""
    return Process(sim, gen, name=name)
