"""Deterministic random streams.

Every stochastic component (workload generators, link loss, think
times) draws from its own named stream so adding randomness to one
component never perturbs another.  Streams are derived from a master
seed plus a stream label via a stable hash (Python's ``hash`` is
salted per-process, so we use ``zlib.crc32`` instead).
"""

from __future__ import annotations

import random
import zlib


def make_rng(seed: int, stream: str = "") -> random.Random:
    """Return a :class:`random.Random` for (seed, stream).

    The same (seed, stream) pair always yields the same sequence, on
    any platform and in any process.
    """
    label = zlib.crc32(stream.encode("utf-8"))
    return random.Random((seed & 0xFFFFFFFF) * 0x1_0000_0000 + label)
