"""One-call setup of a replicated-home-server testbed.

Mirrors :func:`repro.testbed.build_testbed`, but the single home
server becomes a :class:`~repro.ha.group.ReplicationGroup` of
``1 + n_backups`` member servers sharing one authority, and every
client holds its own :class:`~repro.ha.group.ReplicaSet` in
``AccessManager.servers`` so QRPCs fail over when the primary dies.

Member hosts are named ``server``, ``server-b1``, ``server-b2``, …;
members are fully meshed and every client is linked to every member
(the failover path must exist before the failure does).  Default RPC
timeouts and attempt budgets are much shorter than the base testbed's
so tests converge quickly after a primary kill.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.access_manager import AccessManager
from repro.core.conflict import ResolverRegistry
from repro.core.notification import NotificationCenter
from repro.core.object_cache import ObjectCache
from repro.core.operation_log import OperationLog
from repro.core.server import RoverServer
from repro.ha.group import ReplicationGroup
from repro.net.link import ConnectivityPolicy, LinkSpec, ETHERNET_10M
from repro.net.scheduler import NetworkScheduler
from repro.net.simnet import Host, Network
from repro.net.transport import Transport
from repro.obs import Observatory, active_capture
from repro.sim import Simulator
from repro.storage.stable_log import FlushModel, StableLog
from repro.testbed import ClientStack


@dataclass
class HATestbed:
    """A replication group plus its mobile clients, fully wired."""

    sim: Simulator
    network: Network
    group: ReplicationGroup
    #: ``(server, transport)`` per member, primary first at build time.
    members: list[tuple[RoverServer, Transport]]
    clients: list[ClientStack]
    obs: Observatory = field(default_factory=Observatory)

    @property
    def authority(self) -> str:
        return self.group.authority

    @property
    def server(self) -> RoverServer:
        """The *current* primary's server (moves across failovers)."""
        return self.group.primary_server()

    def member_hosts(self) -> list[Host]:
        return self.group.hosts()

    def put_object(self, rdo, verify: Optional[bool] = None) -> int:
        """Install an object on *every* member (pre-provisioned state).

        Server-side administration bypasses the replication path, so
        seeding only the primary would leave the backups without the
        object; install it group-wide, like a release would.  Each
        member gets its own *copy* via a wire round-trip: the store
        holds ``rdo.to_wire()`` by reference, and members sharing one
        mutable state dict would count every replicated apply twice
        (found by the ha-failover checker suite).
        """
        from repro.core.rdo import RDO
        from repro.net.message import marshal, unmarshal

        wire = marshal(rdo.to_wire())
        version = 0
        for server, _transport in self.members:
            version = server.put_object(
                RDO.from_wire(unmarshal(wire)), verify=verify
            )
        return version


def build_ha_testbed(
    n_backups: int = 2,
    n_clients: int = 1,
    link_spec: LinkSpec = ETHERNET_10M,
    policies: Optional[list[Optional[ConnectivityPolicy]]] = None,
    authority: str = "server",
    seed: int = 0,
    obs: Optional[Observatory] = None,
    trace: bool = False,
    rpc_timeout_s: float = 5.0,
    max_attempts: int = 3,
    lease_s: float = 6.0,
    heartbeat_s: float = 2.0,
    flush_model: Optional[FlushModel] = None,
    resolvers: Optional[ResolverRegistry] = None,
    mesh_policies: Optional[dict[tuple[int, int], ConnectivityPolicy]] = None,
) -> HATestbed:
    """Build ``1 + n_backups`` member servers and ``n_clients`` clients.

    ``policies`` applies per client, to *all* of that client's member
    links (a flaky mobile link is flaky toward the whole group).
    ``mesh_policies`` scripts connectivity on the *member* mesh, keyed
    by member index pair ``(a, b)`` with ``a < b`` — the lever for
    partitioning a primary away from its backups while clients still
    reach it (split-brain drills).  Members share ``resolvers`` so
    conflict resolution is identical on whichever member ends up
    applying an export.
    """
    if obs is None:
        obs = active_capture() or Observatory(tracing=trace)
    elif trace:
        obs.tracer.enabled = True
    obs.tracer.scope_attrs["link"] = link_spec.name
    sim = Simulator()
    network = Network(sim, seed=seed)

    members: list[tuple[RoverServer, Transport]] = []
    member_hosts: list[Host] = []
    for index in range(1 + n_backups):
        name = authority if index == 0 else f"{authority}-b{index}"
        host = network.host(name)
        transport = Transport(sim, host, obs=obs)
        server = RoverServer(sim, transport, authority, resolvers=resolvers)
        members.append((server, transport))
        member_hosts.append(host)
    # Full replication mesh: every member can ship/poll every other.
    for a in range(len(member_hosts)):
        for b in range(a + 1, len(member_hosts)):
            mesh_policy = (mesh_policies or {}).get((a, b))
            network.connect(
                member_hosts[a], member_hosts[b], link_spec, mesh_policy
            )

    group = ReplicationGroup(
        sim, members, lease_s=lease_s, heartbeat_s=heartbeat_s, seed=seed
    )

    clients: list[ClientStack] = []
    for index in range(n_clients):
        host = network.host(f"client{index}")
        policy = policies[index] if policies is not None else None
        first_link = None
        for member_host in member_hosts:
            link = network.connect(host, member_host, link_spec, policy)
            if first_link is None:
                first_link = link
        transport = Transport(sim, host, obs=obs)
        scheduler = NetworkScheduler(
            sim,
            transport,
            max_attempts=max_attempts,
            obs=obs,
            rpc_timeout=rpc_timeout_s,
        )
        access = AccessManager(
            sim,
            scheduler,
            servers={authority: group.make_replica_set()},
            cache=ObjectCache(
                clock=lambda: sim.now, obs=obs, owner=host.name
            ),
            log=OperationLog(
                StableLog(flush_model=flush_model, obs=obs, owner=host.name),
                obs=obs,
                owner=host.name,
            ),
            notifications=NotificationCenter(),
            obs=obs,
        )
        access.watch_new_links()
        assert first_link is not None
        clients.append(ClientStack(host, first_link, transport, scheduler, access))

    return HATestbed(
        sim=sim,
        network=network,
        group=group,
        members=members,
        clients=clients,
        obs=obs,
    )
