"""repro.ha — replicated home servers with lease-based failover.

A :class:`ReplicationGroup` turns one Rover authority into a primary
plus K backup :class:`~repro.core.server.RoverServer` instances.  The
primary synchronously log-ships every committed mutating operation to
its backups and acknowledges the client only once a majority of the
group holds the record; lease-based failure detection promotes a
backup deterministically when the primary goes silent; monotonic
epoch numbers fence a deposed primary's replies and ship-backs; and a
crashed ex-primary rejoins as a backup through version-vector
anti-entropy over the server's snapshot state.

Clients address the group through a :class:`ReplicaSet` (stored in
``AccessManager.servers`` in place of a bare host): QRPC requests
fail over to the promoted backup with seeded jittered exponential
backoff, and request-id replay keeps every acknowledged operation
exactly-once across the takeover.
"""

from repro.ha.group import (
    REPLICATED_SERVICES,
    ReplicaAgent,
    ReplicaSet,
    ReplicationGroup,
)
from repro.ha.testbed import HATestbed, build_ha_testbed

__all__ = [
    "REPLICATED_SERVICES",
    "ReplicaAgent",
    "ReplicaSet",
    "ReplicationGroup",
    "HATestbed",
    "build_ha_testbed",
]
