"""Replication group: primary/backup RoverServers with epoch fencing.

One :class:`ReplicaAgent` wraps each member server's transport service
table.  The primary's agent intercepts every client-facing service:
read-only services are answered directly (primary-only reads), while
mutating services (:data:`REPLICATED_SERVICES`) are executed locally,
appended to an in-memory operation record log, and synchronously
shipped to the backups — the client's reply is withheld (via
:class:`~repro.net.transport.AsyncReply`) until a majority of the
group holds the record.  Backups re-execute shipped records through
the very same server handlers (state-machine replication; sound
because the handlers live under the replay-pure effect contract), with
the server's lease clock pinned to the primary's execution time so
lock-lease decisions replay identically.

Failure handling:

* **Leases** — backups expect a heartbeat every ``heartbeat_s``; a
  backup that has heard nothing for ``lease_s`` polls its peers and
  promotes itself when it holds the highest ``(applied seq, -index)``
  rank among a responding majority, none of whom heard the primary
  recently.  Voters promise the candidate's proposed epoch, so two
  concurrent elections can never mint the same epoch number.
* **Epoch fencing** — every ship, heartbeat and client reply carries
  the sender's epoch.  A member receiving a frame from a lower epoch
  rejects it (``stale-epoch``); a primary whose ship-back is rejected
  demotes itself on the spot, abandons its un-acked client replies
  (the callers time out and fail over), and schedules anti-entropy.
* **Anti-entropy rejoin** — a restarted or deposed member sends its
  per-urn ``[version, crc32]`` state vector to the current primary,
  which answers with exactly the differing objects (plus deletions and
  the live lock table); the joiner adopts them wholesale and resumes
  as a backup at the primary's sequence number.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.server import RoverServer
from repro.lint.contracts import replay_pure
from repro.net.simnet import Address, Host
from repro.net.transport import AsyncReply, DelayedReply, RpcError, Transport
from repro.sim import Simulator, make_rng

#: Client services whose effects mutate server state: these are the
#: operations the primary ships to its backups.  Everything else the
#: client can ask for (import/list/ship/subscribe) is read-only and is
#: answered by the primary alone.
REPLICATED_SERVICES = (
    "rover.export",
    "rover.invoke",
    "rover.lock",
    "rover.unlock",
)

#: Read-only client services: fenced on backups (a backup may be
#: stale), served directly on the primary without replication.
READONLY_SERVICES = (
    "rover.import",
    "rover.list",
    "rover.ship",
    "rover.subscribe",
)

#: How many records ride in one replicate frame.
SHIP_BATCH = 64

#: In-memory record-log cap per member; older records are trimmed and
#: stragglers below the trim point are healed by anti-entropy instead.
LOG_CAP = 1024


class ReplicaSet:
    """A client's view of one authority's replication group.

    Duck-typed into ``AccessManager.servers``: the access manager only
    needs :attr:`current_host` (where to send the next request) plus
    :meth:`learn_primary`/:meth:`rotate`/:meth:`observe_epoch` for
    failover.  Each client owns a private instance — membership is
    shared knowledge, but *which member to try next* is per-client.
    """

    def __init__(self, hosts: list[Host], authority: str) -> None:
        if not hosts:
            raise ValueError("a replica set needs at least one member")
        self.hosts = list(hosts)
        self.authority = authority
        self._current = 0
        #: Highest replication epoch seen in any stamped reply; replies
        #: from lower epochs come from a deposed primary.
        self.epoch_seen = 0
        self.rotations = 0

    @property
    def current_host(self) -> Host:
        return self.hosts[self._current]

    def learn_primary(self, host_name: str) -> bool:
        """Point at the named member; False when it is not one of ours."""
        for index, host in enumerate(self.hosts):
            if host.name == host_name:
                if index != self._current:
                    self._current = index
                return True
        return False

    def rotate(self) -> Host:
        """Advance to the next member (round-robin failover probe)."""
        self._current = (self._current + 1) % len(self.hosts)
        self.rotations += 1
        return self.current_host

    def advance_past(self, host_name: str) -> Host:
        """Rotate only if still pointed at ``host_name`` (CAS probe).

        Several outstanding requests share this set; when each rotates
        unconditionally on its own failure, a wave of N simultaneous
        failures advances the pointer N times — with N == group size
        that lands right back on the dead member, in lockstep, forever.
        The first failed request moves the pointer; the rest see it has
        already moved past their failed target and simply follow it.
        """
        if self.current_host.name == host_name:
            return self.rotate()
        return self.current_host

    def observe_epoch(self, epoch: int) -> bool:
        """Record a stamped reply's epoch; False when it is stale."""
        if epoch < self.epoch_seen:
            return False
        self.epoch_seen = epoch
        return True


class ReplicaAgent:
    """One member's replication logic, shimmed over its transport."""

    def __init__(
        self,
        sim: Simulator,
        server: RoverServer,
        transport: Transport,
        group: "ReplicationGroup",
        index: int,
        lease_s: float,
        heartbeat_s: float,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.server = server
        self.transport = transport
        self.group = group
        self.index = index
        self.host = transport.host
        self.lease_s = lease_s
        self.heartbeat_s = heartbeat_s
        self.rng = make_rng(seed, f"ha:{self.host.name}")
        self.role = "backup"
        self.epoch = 0
        #: Highest epoch promised to an election candidate (never
        #: adopted until the candidate wins; keeps concurrent
        #: elections from minting the same epoch twice).
        self.promised = 0
        self.primary_name = ""
        #: Sequence number of the last record executed (primary) or
        #: applied (backup) on this member.
        self.seq = 0
        #: Records (base_seq, seq]; older entries trimmed to LOG_CAP.
        self.log: list[dict] = []
        self.base_seq = 0
        self.last_heard = sim.now
        #: Election hold-off deadline (set when a poll learns some peer
        #: still hears a primary) — deliberately not ``last_heard``.
        self._hold_until = 0.0
        #: Commit seq advertised by the primary (backup-side lag view).
        self._primary_seq = 0
        #: Peer cursors, populated by the group after every member
        #: exists: [{name, host, acked_seq, inflight, attempts}].
        self.peers: list[dict] = []
        #: Client replies gated on quorum: [{seq, epoch, gate, reply}].
        self._waiters: list[dict] = []
        self._electing = False
        self._needs_sync = False
        self._syncing = False
        self._crashed = False
        self._incarnation = 0
        #: Original (server-registered) handlers, keyed by service.
        #: Called through this table on both the primary's execute path
        #: and the backup's apply path.
        self._inner: dict[str, Callable[[Any, Address], Any]] = {}

        registry = server.obs.registry
        labels = {"authority": server.authority, "host": self.host.name}
        self._m_shipped = registry.counter(
            "ha_records_shipped_total",
            "Replication records acknowledged by this backup",
            labelnames=("authority", "host"),
        ).labels(**labels)
        self._m_applied = registry.counter(
            "ha_records_applied_total",
            "Replication records applied on this member",
            labelnames=("authority", "host"),
        ).labels(**labels)
        self._m_failovers = registry.counter(
            "ha_failovers_total",
            "Backup promotions to primary",
            labelnames=("authority",),
        ).labels(authority=server.authority)
        self._m_stale = registry.counter(
            "ha_stale_epoch_rejected_total",
            "Frames and replies rejected for carrying a stale epoch",
            labelnames=("authority", "host"),
        ).labels(**labels)
        registry.gauge(
            "ha_replication_lag",
            "Records this member trails the primary's commit seq by",
            labelnames=("authority", "host"),
        ).labels(**labels).set_function(self._lag)

        server.ha_agent = self
        self._install_shims()
        transport.register("rover.ha.replicate", self._on_replicate)
        transport.register("rover.ha.heartbeat", self._on_heartbeat)
        transport.register("rover.ha.poll", self._on_poll)
        transport.register("rover.ha.sync", self._on_sync)
        transport.register("rover.ha.resync", self._on_resync)

    # -- wiring --------------------------------------------------------------

    def _install_shims(self) -> None:
        """Interpose on every client-facing service the server exposes."""
        table = self.transport._request_handlers
        for service in REPLICATED_SERVICES + READONLY_SERVICES:
            handler = table.get(service)
            if handler is not None:
                self._inner[service] = handler
        self.transport.register("rover.import", self._c_import)
        self.transport.register("rover.export", self._c_export)
        self.transport.register("rover.invoke", self._c_invoke)
        self.transport.register("rover.ship", self._c_ship)
        self.transport.register("rover.list", self._c_list)
        self.transport.register("rover.subscribe", self._c_subscribe)
        self.transport.register("rover.lock", self._c_lock)
        self.transport.register("rover.unlock", self._c_unlock)

    # Thin per-service trampolines: registered individually so the
    # effect lint discovers each as a replay root (and so the funnel
    # knows which service a request arrived on).
    def _c_import(self, body: Any, source: Address) -> Any:
        return self._serve_client("rover.import", body, source)

    def _c_export(self, body: Any, source: Address) -> Any:
        return self._serve_client("rover.export", body, source)

    def _c_invoke(self, body: Any, source: Address) -> Any:
        return self._serve_client("rover.invoke", body, source)

    def _c_ship(self, body: Any, source: Address) -> Any:
        return self._serve_client("rover.ship", body, source)

    def _c_list(self, body: Any, source: Address) -> Any:
        return self._serve_client("rover.list", body, source)

    def _c_subscribe(self, body: Any, source: Address) -> Any:
        return self._serve_client("rover.subscribe", body, source)

    def _c_lock(self, body: Any, source: Address) -> Any:
        return self._serve_client("rover.lock", body, source)

    def _c_unlock(self, body: Any, source: Address) -> Any:
        return self._serve_client("rover.unlock", body, source)

    def start(self) -> None:
        """Begin heartbeat/failure-detection ticks (group calls this)."""
        incarnation = self._incarnation
        # Stagger the first tick per member so election checks have a
        # canonical order even when every lease expires the same instant.
        self.sim.schedule(
            self.heartbeat_s + 0.01 * self.index, self._tick, incarnation
        )

    def _alive(self, incarnation: int) -> bool:
        return incarnation == self._incarnation and not self._crashed

    def _lag(self) -> float:
        if self.role == "primary":
            return 0.0
        return float(max(0, self._primary_seq - self.seq))

    def _quorum_backups(self) -> int:
        """Backup acks needed before a client reply may complete."""
        members = len(self.group.agents)
        return max(0, (members // 2 + 1) - 1)

    def _backoff(self, attempts: int) -> float:
        ceiling = min(
            4.0 * self.heartbeat_s, self.heartbeat_s * (2 ** max(0, attempts - 1))
        )
        return ceiling * (0.5 + 0.5 * self.rng.random())

    # -- client-facing funnel -----------------------------------------------

    @replay_pure
    def _serve_client(self, service: str, body: Any, source: Address) -> Any:
        """Fence, execute, replicate, and quorum-gate one client request."""
        if self.role != "primary":
            return {
                "status": "not-primary",
                "primary": self.primary_name,
                "ha_epoch": self.epoch,
                "ha_member": self.host.name,
            }
        inner = self._inner.get(service)
        if inner is None:
            return {"error": f"unknown service {service!r}"}
        if service not in REPLICATED_SERVICES:
            return self._stamp(inner(body, source))
        at = self.sim.now
        raw = inner(body, source)
        delay_s = 0.0
        reply = raw
        if isinstance(raw, DelayedReply):
            delay_s = raw.delay_s
            reply = raw.body
        record = {
            "seq": self.seq + 1,
            "epoch": self.epoch,
            "service": service,
            "body": body,
            "at": at,
            "src": source[0],
        }
        self.seq = record["seq"]
        self.log.append(record)
        self._trim_log()
        stamped = self._stamp(reply)
        if delay_s > 0:
            stamped = DelayedReply(delay_s, stamped)
        if self._quorum_backups() == 0:
            return stamped
        gate = AsyncReply()
        self._waiters.append(
            {"seq": record["seq"], "epoch": self.epoch, "gate": gate, "reply": stamped}
        )
        for peer in self.peers:
            self._ship_to(peer)
        return gate

    def _stamp(self, reply: Any) -> Any:
        """Copy-and-mark a reply with this primary's epoch + identity.

        Stamping a *copy* matters: the at-most-once caches inside the
        server hold the original reply object, and a replay answered
        after a failover must carry the answering primary's epoch, not
        the epoch frozen in at first execution.
        """
        if not isinstance(reply, dict):
            return reply
        stamped = dict(reply)
        stamped["ha_epoch"] = self.epoch
        stamped["ha_member"] = self.host.name
        return stamped

    def _trim_log(self) -> None:
        if len(self.log) > LOG_CAP:
            dropped = len(self.log) - LOG_CAP
            self.base_seq = self.log[dropped - 1]["seq"]
            del self.log[:dropped]

    def _check_waiters(self) -> None:
        """Complete every gated reply whose record reached quorum."""
        if self.role != "primary" or self._crashed:
            return
        needed = self._quorum_backups()
        remaining: list[dict] = []
        for waiter in self._waiters:
            if waiter["epoch"] != self.epoch:
                continue  # a previous reign's gate: never complete it
            acked = sum(
                1 for peer in self.peers if peer["acked_seq"] >= waiter["seq"]
            )
            if acked >= needed:
                waiter["gate"].complete(waiter["reply"])
            else:
                remaining.append(waiter)
        self._waiters = remaining

    def _drop_waiters(self) -> None:
        """Abandon gated replies (demotion/crash): callers time out."""
        self._waiters = []

    # -- primary: shipping + heartbeats ---------------------------------------

    def _tick(self, incarnation: int) -> None:
        if not self._alive(incarnation):
            return
        if self.role == "primary":
            # Lease-clock housekeeping rides the heartbeat: expire
            # overdue locks even when nobody touches the objects.
            self.server.sweep_expired_locks()
            for peer in self.peers:
                if peer["acked_seq"] < self.seq:
                    self._ship_to(peer)
                else:
                    self._send_heartbeat(peer)
        else:
            if (
                self.sim.now - self.last_heard > self.lease_s
                and self.sim.now >= self._hold_until
            ):
                # Lease expiry trumps sync-need: a backup that still
                # wants anti-entropy may have nobody to sync *from*
                # (its recorded primary died, or was itself).  Standing
                # for election is safe even then — rank deferral plus
                # the majority requirement mean a behind member cannot
                # win while any fresher member answers the poll.
                self._start_election()
            elif self._needs_sync:
                self._start_sync()
        self.sim.schedule(self.heartbeat_s, self._tick, incarnation)

    def _ship_to(self, peer: dict) -> None:
        if peer["inflight"] or self.role != "primary" or self._crashed:
            return
        from_seq = peer["acked_seq"] + 1
        if from_seq <= self.base_seq:
            # Fell behind the trimmed log: anti-entropy, not records.
            self._nudge_resync(peer)
            return
        records = [r for r in self.log if r["seq"] >= from_seq][:SHIP_BATCH]
        if not records:
            return
        incarnation = self._incarnation
        epoch = self.epoch
        body = {
            "epoch": epoch,
            "primary": self.host.name,
            "records": records,
            "commit_seq": self.seq,
        }
        peer["inflight"] = True
        before = peer["acked_seq"]

        def on_reply(reply: Any) -> None:
            peer["inflight"] = False
            if not self._alive(incarnation):
                return
            self._note_peer_reply(peer, reply)
            if peer["acked_seq"] > before:
                peer["attempts"] = 0
                self._m_shipped.inc(peer["acked_seq"] - before)
                if self.role == "primary" and peer["acked_seq"] < self.seq:
                    self._ship_to(peer)
            elif self.role == "primary":
                # No progress (peer mid-resync): damp the retry.
                self.sim.schedule(
                    self.heartbeat_s, self._retry_ship, peer, incarnation
                )

        def on_error(error: RpcError) -> None:
            peer["inflight"] = False
            if not self._alive(incarnation) or self.role != "primary":
                return
            peer["attempts"] += 1
            self.sim.schedule(
                self._backoff(peer["attempts"]), self._retry_ship, peer, incarnation
            )

        try:
            self.transport.call(
                peer["host"],
                "rover.ha.replicate",
                body,
                on_reply=on_reply,
                on_error=on_error,
                timeout=4.0 * self.heartbeat_s,
            )
        except RpcError:
            peer["inflight"] = False
            peer["attempts"] += 1
            self.sim.schedule(
                self._backoff(peer["attempts"]), self._retry_ship, peer, incarnation
            )

    def _retry_ship(self, peer: dict, incarnation: int) -> None:
        if self._alive(incarnation) and self.role == "primary":
            self._ship_to(peer)

    def _send_heartbeat(self, peer: dict) -> None:
        incarnation = self._incarnation
        body = {
            "epoch": self.epoch,
            "primary": self.host.name,
            "commit_seq": self.seq,
        }

        def on_reply(reply: Any) -> None:
            if not self._alive(incarnation):
                return
            self._note_peer_reply(peer, reply)

        try:
            self.transport.call(
                peer["host"],
                "rover.ha.heartbeat",
                body,
                on_reply=on_reply,
                on_error=lambda error: None,
                timeout=2.0 * self.heartbeat_s,
            )
        except RpcError:
            pass  # no route to the peer right now; next tick retries

    def _note_peer_reply(self, peer: dict, reply: Any) -> None:
        """Fold a peer's ack/stale-epoch feedback into primary state."""
        if not isinstance(reply, dict):
            return
        if reply.get("status") == "stale-epoch":
            self._deposed(reply)
            return
        acked = int(reply.get("ack_seq", -1))
        if acked > peer["acked_seq"]:
            peer["acked_seq"] = acked
            self._check_waiters()

    def _nudge_resync(self, peer: dict) -> None:
        """Tell a straggler to run anti-entropy (its gap outlived the log)."""
        if peer["inflight"]:
            return
        incarnation = self._incarnation
        peer["inflight"] = True

        def on_reply(reply: Any) -> None:
            peer["inflight"] = False
            if self._alive(incarnation):
                self._note_peer_reply(peer, reply)

        def on_error(error: RpcError) -> None:
            peer["inflight"] = False

        try:
            self.transport.call(
                peer["host"],
                "rover.ha.resync",
                {"epoch": self.epoch, "primary": self.host.name},
                on_reply=on_reply,
                on_error=on_error,
                timeout=2.0 * self.heartbeat_s,
            )
        except RpcError:
            peer["inflight"] = False

    def _deposed(self, reply: dict) -> None:
        """A higher epoch exists: step down and reconcile."""
        if self.role != "primary":
            return
        self.role = "backup"
        self.epoch = max(self.epoch, int(reply.get("epoch", self.epoch)))
        self.primary_name = str(reply.get("primary") or "")
        self.last_heard = self.sim.now
        self._drop_waiters()
        self._needs_sync = True
        self._start_sync()

    # -- backup: apply + failure detection ------------------------------------

    def _on_replicate(self, body: Any, source: Address) -> Any:
        epoch = int(body.get("epoch", 0))
        verdict = self._observe_authority(epoch, str(body.get("primary", "")))
        if verdict is not None:
            return verdict
        self._primary_seq = int(body.get("commit_seq", self._primary_seq))
        gap = False
        for record in body.get("records", []):
            seq = int(record.get("seq", 0))
            if seq <= self.seq:
                continue  # duplicate delivery
            if seq != self.seq + 1:
                gap = True  # missing prefix: only anti-entropy can heal
                break
            self._apply(record)
        if gap and not self._needs_sync:
            self._needs_sync = True
            self._schedule_sync()
        return {"ack_seq": self.seq, "epoch": self.epoch}

    def _on_heartbeat(self, body: Any, source: Address) -> Any:
        epoch = int(body.get("epoch", 0))
        verdict = self._observe_authority(epoch, str(body.get("primary", "")))
        if verdict is not None:
            return verdict
        self._primary_seq = int(body.get("commit_seq", self._primary_seq))
        return {"ack_seq": self.seq, "epoch": self.epoch}

    def _observe_authority(self, epoch: int, primary: str) -> Optional[dict]:
        """Common epoch fence for primary-originated frames.

        Returns the rejection reply for stale frames, None to proceed.
        Adopting a higher epoch demotes this member if it believed
        itself primary (it lost a partition race) and marks it for
        anti-entropy, since its un-replicated suffix may diverge.
        """
        if epoch < self.epoch:
            self._m_stale.inc()
            return {
                "status": "stale-epoch",
                "epoch": self.epoch,
                "primary": self.primary_name,
            }
        if epoch > self.epoch or self.primary_name != primary:
            was_primary = self.role == "primary"
            self.epoch = epoch
            self.primary_name = primary
            if was_primary and primary != self.host.name:
                self.role = "backup"
                self._drop_waiters()
                self._needs_sync = True
                self._schedule_sync()
        self.last_heard = self.sim.now
        return None

    def _apply(self, record: dict) -> None:
        """Re-execute one shipped record through the server's handler.

        The lease clock is pinned to the record's primary-side
        execution time for the duration, so lock grants and expiries
        evaluate identically here and there.
        """
        inner = self._inner.get(record.get("service", ""))
        if inner is not None:
            self.server._apply_now = float(record.get("at", self.sim.now))
            try:
                inner(record.get("body"), (str(record.get("src", "")), 0))
            except Exception:
                # Divergent apply: record it by falling behind nothing —
                # the state vector diff at the next anti-entropy round
                # repairs whatever this left inconsistent.
                pass
            finally:
                self.server._apply_now = None
        self.seq = int(record["seq"])
        self.log.append(record)
        self._trim_log()
        self._m_applied.inc()

    def _on_poll(self, body: Any, source: Address) -> Any:
        """Answer an election poll: rank, epoch, and freshness."""
        proposed = int(body.get("proposed", 0))
        heard = (
            self.role == "primary"
            or (self.sim.now - self.last_heard) <= self.lease_s
        )
        floor = max(self.epoch, self.promised)
        granted = proposed > floor and not heard
        if granted:
            self.promised = proposed
        return {
            "seq": self.seq,
            "index": self.index,
            "epoch": floor,
            "heard": heard,
            "granted": granted,
        }

    def _start_election(self) -> None:
        if self._electing or self.role == "primary" or self._crashed:
            return
        self._electing = True
        incarnation = self._incarnation
        proposed = max(self.epoch, self.promised) + 1
        self.promised = proposed
        replies: list[dict] = []
        for agent in self.group.agents:
            if agent is self:
                continue
            try:
                self.transport.call(
                    agent.host,
                    "rover.ha.poll",
                    {
                        "proposed": proposed,
                        "seq": self.seq,
                        "index": self.index,
                        "candidate": self.host.name,
                    },
                    on_reply=lambda reply, acc=replies: acc.append(
                        reply if isinstance(reply, dict) else {}
                    ),
                    on_error=lambda error: None,
                    timeout=2.0 * self.heartbeat_s,
                )
            except RpcError:
                continue
        self.sim.schedule(
            2.0 * self.heartbeat_s + 0.01,
            self._decide_election,
            proposed,
            replies,
            incarnation,
        )

    def _decide_election(
        self, proposed: int, replies: list[dict], incarnation: int
    ) -> None:
        if not self._alive(incarnation):
            return
        self._electing = False
        if self.role == "primary":
            return
        members = len(self.group.agents)
        votes = 1 + sum(1 for reply in replies if reply.get("granted"))
        if any(reply.get("heard") for reply in replies):
            # Someone still hears the primary: not a failure, a
            # partition on our side.  Hold off and stand down — on a
            # *separate* clock: resetting ``last_heard`` here would
            # make our own poll replies claim we hear a primary we do
            # not, and mutual stand-downs then livelock the group with
            # no primary at all.
            self._hold_until = self.sim.now + self.lease_s
            return
        highest = max(
            (int(reply.get("epoch", 0)) for reply in replies), default=0
        )
        if highest >= proposed:
            # A newer reign exists that we have not heard from yet;
            # retry later with a higher proposal (next tick).
            self.promised = max(self.promised, highest)
            return
        my_rank = (self.seq, -self.index)
        for reply in replies:
            rank = (int(reply.get("seq", -1)), -int(reply.get("index", 0)))
            if rank > my_rank:
                return  # a better-positioned peer will win its own election
        if votes <= members // 2:
            return  # no majority reachable: stay a backup (CP choice)
        self._promote(proposed, replies)

    def _promote(self, new_epoch: int, replies: list[dict]) -> None:
        self.epoch = new_epoch
        self.role = "primary"
        self.primary_name = self.host.name
        self._needs_sync = False
        self._syncing = False
        self._m_failovers.inc()
        # Seed ship cursors from what the voters reported; members that
        # did not answer (the dead primary) restart from the log floor
        # and are healed by duplicate-skip or anti-entropy.
        reported = {
            int(reply.get("index", -1)): int(reply.get("seq", -1))
            for reply in replies
        }
        for peer in self.peers:
            peer["acked_seq"] = reported.get(peer["index"], -1)
            peer["attempts"] = 0
        for peer in self.peers:
            if peer["acked_seq"] < self.seq:
                self._ship_to(peer)
            else:
                self._send_heartbeat(peer)  # declare the new epoch now

    # -- anti-entropy ----------------------------------------------------------

    def _schedule_sync(self) -> None:
        self.sim.schedule(0.0, self._start_sync)

    def _start_sync(self) -> None:
        if (
            self._syncing
            or self._crashed
            or self.role == "primary"
            or not self._needs_sync
        ):
            return
        target = None
        for agent in self.group.agents:
            if agent.host.name == self.primary_name and agent is not self:
                target = agent.host
        if target is None:
            return  # primary unknown; the tick retries after election
        self._syncing = True
        incarnation = self._incarnation
        body = {
            "vector": self.server.state_vector(),
            "seq": self.seq,
            "epoch": self.epoch,
            "member": self.host.name,
        }

        def on_reply(reply: Any) -> None:
            self._syncing = False
            if not self._alive(incarnation):
                return
            if not isinstance(reply, dict) or reply.get("status") != "ok":
                return  # primary moved again; the tick retries
            self._adopt_sync(reply)

        def on_error(error: RpcError) -> None:
            self._syncing = False  # the tick retries

        try:
            self.transport.call(
                target,
                "rover.ha.sync",
                body,
                on_reply=on_reply,
                on_error=on_error,
                timeout=4.0 * self.heartbeat_s,
            )
        except RpcError:
            self._syncing = False

    def _adopt_sync(self, reply: dict) -> None:
        """Install the primary's anti-entropy answer wholesale."""
        self.server.merge_subset(
            reply.get("subset", {}), reply.get("deletions", [])
        )
        self.server._locks = {
            urn: (holder, float(expires))
            for urn, holder, expires in reply.get("locks", [])
        }
        self.seq = int(reply.get("seq", self.seq))
        self.base_seq = self.seq
        self.log = []
        self.epoch = max(self.epoch, int(reply.get("epoch", self.epoch)))
        self.primary_name = str(reply.get("primary", self.primary_name))
        self.role = "backup"
        self._needs_sync = False
        self.last_heard = self.sim.now

    def _on_sync(self, body: Any, source: Address) -> Any:
        """Serve an anti-entropy request (primary side)."""
        if self.role != "primary":
            return {
                "status": "not-primary",
                "primary": self.primary_name,
                "ha_epoch": self.epoch,
            }
        theirs = body.get("vector", {})
        mine = self.server.state_vector()
        differing = sorted(
            urn for urn, signature in mine.items() if theirs.get(urn) != signature
        )
        deletions = sorted(urn for urn in theirs if urn not in mine)
        return {
            "status": "ok",
            "subset": self.server.subset_snapshot(differing),
            "deletions": deletions,
            "locks": sorted(
                [urn, holder, expires]
                for urn, (holder, expires) in self.server._locks.items()
            ),
            "seq": self.seq,
            "epoch": self.epoch,
            "primary": self.host.name,
        }

    def _on_resync(self, body: Any, source: Address) -> Any:
        """Primary's nudge: our gap outlived its log — run anti-entropy."""
        epoch = int(body.get("epoch", 0))
        verdict = self._observe_authority(epoch, str(body.get("primary", "")))
        if verdict is not None:
            return verdict
        if not self._needs_sync:
            self._needs_sync = True
            self._schedule_sync()
        return {"ack_seq": self.seq, "epoch": self.epoch}

    # -- process faults ---------------------------------------------------------

    def crash(self) -> None:
        """The member's process died (chaos): volatile agent state goes."""
        self._crashed = True
        self._incarnation += 1
        self._drop_waiters()
        self._electing = False
        self._syncing = False
        for peer in self.peers:
            peer["inflight"] = False

    def restart(self) -> None:
        """Rejoin after a crash: resume as a backup and reconcile."""
        self._crashed = False
        self._incarnation += 1
        self.role = "backup"
        self.promised = max(self.promised, self.epoch)
        self.last_heard = self.sim.now
        self._needs_sync = True
        self._schedule_sync()
        self.start()


class ReplicationGroup:
    """Wires N member servers into one primary + K backups."""

    def __init__(
        self,
        sim: Simulator,
        members: list[tuple[RoverServer, Transport]],
        lease_s: float = 6.0,
        heartbeat_s: float = 2.0,
        seed: int = 0,
    ) -> None:
        if not members:
            raise ValueError("a replication group needs at least one member")
        self.sim = sim
        self.authority = members[0][0].authority
        self.agents = [
            ReplicaAgent(
                sim,
                server,
                transport,
                group=self,
                index=index,
                lease_s=lease_s,
                heartbeat_s=heartbeat_s,
                seed=seed,
            )
            for index, (server, transport) in enumerate(members)
        ]
        first = self.agents[0]
        first.role = "primary"
        for agent in self.agents:
            agent.primary_name = first.host.name
            agent.peers = [
                {
                    "name": other.host.name,
                    "index": other.index,
                    "host": other.host,
                    "acked_seq": 0,
                    "inflight": False,
                    "attempts": 0,
                }
                for other in self.agents
                if other is not agent
            ]
            agent.start()

    def primary_agent(self) -> ReplicaAgent:
        """The member currently acting as primary (highest live epoch)."""
        best = None
        for agent in self.agents:
            if agent.role == "primary" and not agent._crashed:
                if best is None or agent.epoch > best.epoch:
                    best = agent
        return best if best is not None else self.agents[0]

    def primary_server(self) -> RoverServer:
        return self.primary_agent().server

    def hosts(self) -> list[Host]:
        return [agent.host for agent in self.agents]

    def make_replica_set(self) -> ReplicaSet:
        """A fresh client-side membership view (one per client)."""
        return ReplicaSet(self.hosts(), self.authority)
