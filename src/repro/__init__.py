"""repro — a reproduction of *Rover: A Toolkit for Mobile Information
Access* (Joseph, deLespinasse, Tauber, Gifford, Kaashoek; SOSP 1995).

The toolkit combines **relocatable dynamic objects** (RDOs — data plus
code behind a well-defined interface, cacheable at the client or
shipped to the server) with **queued remote procedure call** (QRPC —
non-blocking RPC that is logged to stable storage and drained by a
priority network scheduler whenever connectivity permits), so
applications keep working across disconnection and slow links.

Quick start::

    from repro import build_testbed, URN, RDO, RDOInterface, MethodSpec
    from repro.net import CSLIP_14_4

    bed = build_testbed(link_spec=CSLIP_14_4)
    urn = URN("server", "notes/today")
    bed.server.put_object(RDO(urn, "note", {"text": "hello"}))

    promise = bed.access.import_(urn)     # non-blocking QRPC
    rdo = promise.wait(bed.sim)           # run simulation until it lands
    print(rdo.data["text"])

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core import (
    AccessManager,
    AppendMerge,
    CacheStatus,
    ConflictReport,
    EventType,
    ExecutionCostModel,
    FieldwiseMerge,
    KeepServer,
    LastWriterWins,
    MethodSpec,
    NotificationCenter,
    ObjectCache,
    Operation,
    OperationLog,
    Promise,
    QRPCRequest,
    RDO,
    RDOInterface,
    ResolverRegistry,
    RoverServer,
    SafeInterpreter,
    Session,
    URN,
)
from repro.net import (
    CSLIP_14_4,
    CSLIP_2_4,
    ETHERNET_10M,
    STANDARD_LINKS,
    WAVELAN_2M,
    NetworkScheduler,
    Priority,
)
from repro.sim import Simulator
from repro.testbed import Testbed, build_testbed

__version__ = "0.1.0"

__all__ = [
    "AccessManager",
    "AppendMerge",
    "CacheStatus",
    "ConflictReport",
    "CSLIP_14_4",
    "CSLIP_2_4",
    "ETHERNET_10M",
    "EventType",
    "ExecutionCostModel",
    "FieldwiseMerge",
    "KeepServer",
    "LastWriterWins",
    "MethodSpec",
    "NetworkScheduler",
    "NotificationCenter",
    "ObjectCache",
    "Operation",
    "OperationLog",
    "Priority",
    "Promise",
    "QRPCRequest",
    "RDO",
    "RDOInterface",
    "ResolverRegistry",
    "RoverServer",
    "SafeInterpreter",
    "Session",
    "Simulator",
    "STANDARD_LINKS",
    "Testbed",
    "URN",
    "WAVELAN_2M",
    "build_testbed",
    "__version__",
]
