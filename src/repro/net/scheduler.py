"""Rover's network scheduler.

The paper (section 5.3): *"The implementation of the network scheduler
has several queues for different priorities and it chooses a network
interface based on availability and quality."*  Messages may travel
over connection-based routes (the direct link) or connectionless queued
routes (the SMTP relay), chosen per message by availability and the
requested quality of service.

This module implements exactly that:

* several priority queues (:class:`Priority`), FIFO within a priority;
* a pluggable set of :class:`Route` objects; the scheduler picks the
  best *available* route per message, preferring higher quality;
* bounded in-flight window, retransmission with exponential backoff,
  and terminal failure reporting after ``max_attempts``;
* wake-ups on link up/down transitions so queued traffic drains the
  moment connectivity returns — the heart of QRPC's "requests and
  responses are exchanged upon network reconnection".
"""

from __future__ import annotations

import heapq
from enum import IntEnum
from typing import Any, Callable, Optional

from repro.net.message import marshalled_size
from repro.net.simnet import Host, Link
from repro.net.transport import RpcError, Transport
from repro.obs import Observatory
from repro.obs.trace import TRACE_KEY, parse_context
from repro.sim import Simulator
from repro.sim.rng import make_rng


class Priority(IntEnum):
    """QRPC priorities; lower value drains first."""

    FOREGROUND = 0  # the user is waiting on this (e.g. a clicked page)
    DEFAULT = 1
    BACKGROUND = 2  # prefetch / bulk traffic


class RouteKind(IntEnum):
    """Connection-based vs connectionless queued carriers."""

    DIRECT = 0   # connection-based (TCP-like over a live link)
    QUEUED = 1   # connectionless store-and-forward (SMTP-like)


class Route:
    """A way to move a request envelope to a destination host."""

    #: Relative quality; the scheduler prefers the highest available.
    quality: float = 0.0
    name: str = "route"
    kind: RouteKind = RouteKind.DIRECT

    def available(self, dst: Host) -> bool:
        raise NotImplementedError

    def send(
        self,
        dst: Host,
        service: str,
        body: Any,
        on_reply: Callable[[Any], None],
        on_error: Callable[[str], None],
        on_accepted: Callable[[], None],
    ) -> None:
        """Attempt one delivery.

        Eventually either ``on_reply`` or ``on_error`` fires (exactly
        once).  A store-and-forward route additionally fires
        ``on_accepted`` when it has taken custody of the message (e.g.
        the relay spooled it) — from that point the scheduler frees the
        in-flight window slot even though the reply is still pending,
        because the channel is no longer occupied by this message.
        Connection-based routes never call ``on_accepted``.
        """
        raise NotImplementedError


class DirectRoute(Route):
    """Connection-based delivery over the best currently-up link."""

    name = "direct"

    #: Generous default: a 128 KB object over a 2.4 Kbit/s modem takes
    #: ~450 s; timeouts exist to detect lost replies, not to police
    #: slow links, so err well above the worst legitimate transfer.
    def __init__(self, transport: Transport, timeout: float = 600.0) -> None:
        self.transport = transport
        self.timeout = timeout

    def available(self, dst: Host) -> bool:
        return self.transport.best_link(dst) is not None

    @property
    def quality(self) -> float:  # type: ignore[override]
        # Quality tracks the best attached link; refined per-message in send().
        best = max(
            (link.spec.bandwidth_bps for link in self.transport.host.links if link.is_up),
            default=0.0,
        )
        return best

    def send(
        self,
        dst: Host,
        service: str,
        body: Any,
        on_reply: Callable[[Any], None],
        on_error: Callable[[str], None],
        on_accepted: Callable[[], None],
    ) -> None:
        try:
            self.transport.call(
                dst,
                service,
                body,
                on_reply=on_reply,
                on_error=lambda err: on_error(str(err)),
                timeout=self.timeout,
            )
        except RpcError as exc:
            on_error(str(exc))


class QueuedMessage:
    """A message sitting in (or in flight from) the scheduler."""

    __slots__ = (
        "seq",
        "dst",
        "service",
        "body",
        "priority",
        "on_reply",
        "on_failed",
        "attempts",
        "enqueued_at",
        "state",
        "size_hint",
        "route_preference",
        "trace",
        "last_queued_at",
    )

    def __init__(
        self,
        seq: int,
        dst: Host,
        service: str,
        body: Any,
        priority: Priority,
        on_reply: Callable[[Any], None],
        on_failed: Callable[[str], None],
        enqueued_at: float,
        size_hint: int = 0,
        route_preference: Optional[RouteKind] = None,
    ) -> None:
        self.seq = seq
        self.dst = dst
        self.service = service
        self.body = body
        self.priority = priority
        self.on_reply = on_reply
        self.on_failed = on_failed
        self.attempts = 0
        self.enqueued_at = enqueued_at
        self.state = "queued"  # queued | inflight | accepted | done | cancelled
        self.size_hint = size_hint
        #: Trace context propagated in the body (see repro.obs.trace).
        self.trace = (
            parse_context(body.get(TRACE_KEY)) if isinstance(body, dict) else None
        )
        #: When the message last (re-)entered the queue; queue.wait
        #: spans measure from here, so each retry gets its own span.
        self.last_queued_at = enqueued_at
        #: Requested quality of service: pin the message to one carrier
        #: kind (paper 5.3: route choice "based in part upon the
        #: requested quality of service").  None = any carrier.
        self.route_preference = route_preference

    def sort_key(self) -> tuple[int, int]:
        return (int(self.priority), self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QueuedMessage #{self.seq} {self.service} -> {self.dst.name} "
            f"{self.priority.name} {self.state}>"
        )


class NetworkScheduler:
    """Priority-queued, route-selecting message drainer for one host."""

    def __init__(
        self,
        sim: Simulator,
        transport: Transport,
        max_inflight: int = 4,
        max_attempts: int = 8,
        base_backoff: float = 1.0,
        max_backoff: float = 300.0,
        fifo_only: bool = False,
        batch_max: int = 1,
        obs: Optional[Observatory] = None,
        rpc_timeout: float = 600.0,
    ) -> None:
        self.sim = sim
        self.transport = transport
        self.host = transport.host
        self.max_inflight = max_inflight
        self.max_attempts = max_attempts
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        self.fifo_only = fifo_only
        #: Per-attempt reply timeout for the default direct route.
        #: Chaos runs shrink this so corrupted/dropped frames (which
        #: are invisible to the sender) burn less virtual time before
        #: retransmission.
        self.rpc_timeout = rpc_timeout
        #: Channel-use optimization for draining a parked queue: up to
        #: this many same-destination messages ride one wire exchange
        #: (service ``rover.batch``; the server must support it).
        #: 1 disables batching (the paper's prototype behaviour).
        self.batch_max = batch_max
        self.routes: list[Route] = [DirectRoute(transport, timeout=rpc_timeout)]
        #: Seeded jitter stream for retransmit backoff: without it,
        #: every client that lost the same link retries in lockstep and
        #: the reconnect instant becomes a retransmit storm.
        self.rng = make_rng(
            getattr(transport.host.network, "seed", 0), f"sched:{self.host.name}"
        )
        self._heap: list[tuple[tuple[int, int], QueuedMessage]] = []
        #: Every message not yet in a terminal state (queued, backing
        #: off, or in flight) — the set a crash simulation abandons.
        self._active: set[QueuedMessage] = set()
        self._seq = 0
        self._inflight = 0
        self.obs = obs if obs is not None else Observatory()
        self.tracer = self.obs.tracer
        registry = self.obs.registry
        host_label = {"host": self.host.name}
        self._m_delivered = registry.counter(
            "sched_delivered_total", "Messages answered", labelnames=("host",)
        ).labels(**host_label)
        self._m_failed = registry.counter(
            "sched_failed_total", "Messages terminally failed", labelnames=("host",)
        ).labels(**host_label)
        self._m_retransmissions = registry.counter(
            "sched_retransmissions_total",
            "Re-dispatches after a failed attempt",
            labelnames=("host",),
        ).labels(**host_label)
        self._m_batches = registry.counter(
            "sched_batches_sent_total",
            "rover.batch exchanges dispatched",
            labelnames=("host",),
        ).labels(**host_label)
        self._m_queue_wait = registry.histogram(
            "sched_queue_wait_seconds",
            "Time from enqueue (or requeue) to dispatch",
            labelnames=("host", "priority"),
        )
        #: Dispatched request payload bytes attributed to their service
        #: (retransmissions re-count: this is wire cost, not goodput).
        #: How fleet telemetry (E15) proves its overhead share without
        #: needing a telemetry-free control run.
        self._m_service_bytes = registry.counter(
            "sched_service_bytes_total",
            "Dispatched request payload bytes by service",
            labelnames=("host", "service"),
        )
        for priority in Priority:
            gauge = registry.gauge(
                "sched_queue_depth",
                "Currently queued messages",
                labelnames=("host", "priority"),
            ).labels(host=self.host.name, priority=priority.name.lower())
            gauge.set_function(
                lambda p=priority: self._queue_depth_for(p)
            )
        registry.gauge(
            "sched_inflight", "Messages occupying the window", labelnames=("host",)
        ).labels(**host_label).set_function(lambda: self._inflight)
        self._watched_links: set[str] = set()
        # Memoized _best_route results, keyed by (dst name, preference).
        # Route availability only changes when link state does, so the
        # cache is dumped wholesale on every link transition (and when
        # routes or links are added) rather than tracked per entry.
        self._route_cache: dict[tuple[str, Optional[int]], Optional[Route]] = {}
        self._drain_hooks: list[Callable[[], None]] = []
        self._watch_links()

    # -- counters (registry-backed; attribute names kept for callers) -------

    @property
    def delivered(self) -> int:
        return int(self._m_delivered.value)

    @property
    def failed(self) -> int:
        return int(self._m_failed.value)

    @property
    def retransmissions(self) -> int:
        return int(self._m_retransmissions.value)

    @property
    def batches_sent(self) -> int:
        return int(self._m_batches.value)

    def _queue_depth_for(self, priority: Priority) -> int:
        return sum(
            1
            for __, m in self._heap
            if m.state == "queued" and m.priority is priority
        )

    def stats(self) -> dict:
        """Point-in-time counters, mirroring :meth:`ObjectCache.stats`.

        A thin view over the metrics registry: the same numbers are
        exported as ``sched_*`` series with a ``host`` label.
        """
        return {
            "queued": {
                priority.name.lower(): self._queue_depth_for(priority)
                for priority in Priority
            },
            "inflight": self._inflight,
            "delivered": self.delivered,
            "failed": self.failed,
            "retransmissions": self.retransmissions,
            "batches_sent": self.batches_sent,
        }

    # -- public API -------------------------------------------------------

    def add_route(self, route: Route) -> None:
        """Register an additional carrier (e.g. the SMTP relay route)."""
        self.routes.append(route)
        self._route_cache.clear()

    def add_drain_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` when a link comes back up, before the queue drains.

        This is the reconnection-compaction window: the access manager
        coalesces the queued backlog in the instant between link-up and
        the first dispatch, so the drained queue is the compacted one.
        """
        self._drain_hooks.append(hook)

    def submit(
        self,
        dst: Host,
        service: str,
        body: Any,
        priority: Priority = Priority.DEFAULT,
        on_reply: Optional[Callable[[Any], None]] = None,
        on_failed: Optional[Callable[[str], None]] = None,
        size_hint: int = 0,
        route_preference: Optional[RouteKind] = None,
    ) -> QueuedMessage:
        """Queue a request.  Non-blocking; callbacks fire on completion."""
        message = QueuedMessage(
            seq=self._seq,
            dst=dst,
            service=service,
            body=body,
            priority=Priority.DEFAULT if self.fifo_only else priority,
            on_reply=on_reply or (lambda body: None),
            on_failed=on_failed or (lambda reason: None),
            enqueued_at=self.sim.now,
            size_hint=size_hint,
            route_preference=route_preference,
        )
        self._seq += 1
        self._active.add(message)
        self._push(message)
        # Watch links that may have been attached after construction.
        self._watch_links()
        self.sim.schedule(0.0, self._pump)
        return message

    def cancel(self, message: QueuedMessage) -> bool:
        """Drop a queued message; returns False if already in flight/done."""
        if message.state != "queued":
            return False
        message.state = "cancelled"
        self._active.discard(message)
        return True

    def evict(self, message: QueuedMessage, reason: str) -> bool:
        """Terminally fail a message now, without waiting out its
        retransmission budget.

        The failover path uses this when a destination has been
        declared dead: sibling messages still chasing it should fail
        as a group, not straggle in one retransmission timeout at a
        time.  Unlike :meth:`cancel` this fires ``on_failed`` (so the
        owner can reroute) and also takes messages already in flight —
        late wire callbacks see a terminal state and are ignored.
        """
        if message.state not in ("queued", "inflight", "accepted"):
            return False
        if message.state == "inflight":
            self._inflight -= 1  # its release_slot closure never runs
        message.state = "done"
        self._active.discard(message)
        self._m_failed.inc()
        message.on_failed(reason)
        self._pump()
        return True

    def reprioritize(self, message: QueuedMessage, priority: Priority) -> bool:
        """Raise/lower a *queued* message's priority (e.g. a background
        prefetch the user just clicked on).  No effect once in flight."""
        if message.state != "queued" or self.fifo_only:
            return False
        if priority == message.priority:
            return True
        message.priority = priority
        # Lazy re-heap: push a fresh key; stale heap entries are
        # skipped because sort_key() no longer matches... simplest
        # correct approach is to rebuild the heap.
        self._heap = [
            (m.sort_key(), m) for __, m in self._heap if m.state == "queued"
        ]
        heapq.heapify(self._heap)
        self._pump()
        return True

    def abandon_all(self) -> int:
        """Simulate process death: forget every queued and in-flight
        message without firing any callback.

        The stable operation log is the only crash survivor; a fresh
        access manager recovers from it and resubmits.  Late replies to
        abandoned in-flight messages are ignored (their state is
        terminal).  Returns the number of messages abandoned.
        """
        count = 0
        # self._active is identity-hashed, so bare iteration visits
        # messages in per-process hash order; walk by submission seq so
        # any observer of the cancellations sees one canonical order.
        for message in sorted(self._active, key=lambda m: m.seq):
            if message.state in ("queued", "inflight", "accepted"):
                message.state = "cancelled"
                count += 1
        self._active.clear()
        self._heap.clear()
        self._inflight = 0
        return count

    def queue_length(self) -> int:
        return sum(1 for __, m in self._heap if m.state == "queued")

    @property
    def inflight(self) -> int:
        return self._inflight

    def idle(self) -> bool:
        return self._inflight == 0 and self.queue_length() == 0

    # -- internals ----------------------------------------------------------

    def _push(self, message: QueuedMessage) -> None:
        heapq.heappush(self._heap, (message.sort_key(), message))

    def _watch_links(self) -> None:
        for link in self.host.links:
            if link.name in self._watched_links:
                continue
            self._watched_links.add(link.name)
            # A link attached after construction may change route
            # availability even before any transition fires.
            self._route_cache.clear()
            link.on_transition(self._on_link_transition)

    def _on_link_transition(self, link: Link, is_up: bool) -> None:
        self._route_cache.clear()
        if is_up:
            for hook in self._drain_hooks:
                hook()
            self._pump()

    def _best_route(
        self, dst: Host, preference: Optional[RouteKind] = None
    ) -> Optional[Route]:
        key = (dst.name, None if preference is None else int(preference.value))
        if key in self._route_cache:
            return self._route_cache[key]
        candidates = [
            route
            for route in self.routes
            if route.available(dst)
            and (preference is None or route.kind == preference)
        ]
        best = max(candidates, key=lambda route: route.quality) if candidates else None
        self._route_cache[key] = best
        return best

    def _pump(self) -> None:
        deferred: list[tuple[tuple[int, int], QueuedMessage]] = []
        while self._inflight < self.max_inflight and self._heap:
            __, message = self._heap[0]
            if message.state != "queued":
                heapq.heappop(self._heap)
                continue
            route = self._best_route(message.dst, message.route_preference)
            if route is None:
                # This message's destination (or pinned carrier) is
                # unreachable right now; let the rest of the queue make
                # progress around it — another destination's link may
                # well be up (no head-of-line blocking across servers).
                deferred.append(heapq.heappop(self._heap))
                continue
            heapq.heappop(self._heap)
            batch = self._gather_batch(message)
            if batch is not None:
                self._dispatch_batch(batch, route)
            else:
                self._dispatch(message, route)
        for item in deferred:
            heapq.heappush(self._heap, item)

    def _gather_batch(self, head: QueuedMessage) -> Optional[list[QueuedMessage]]:
        """Pull queued same-destination messages to ride with ``head``.

        Returns None when batching is off or nothing else qualifies.
        Only unpinned messages batch — a pinned message's carrier may
        differ from the one chosen for the head.
        """
        if self.batch_max <= 1 or head.route_preference is not None:
            return None
        batch = [head]
        skipped: list[tuple[tuple[int, int], QueuedMessage]] = []
        while self._heap and len(batch) < self.batch_max:
            key, candidate = self._heap[0]
            if candidate.state != "queued":
                heapq.heappop(self._heap)
                continue
            if candidate.dst is not head.dst or candidate.route_preference is not None:
                skipped.append(heapq.heappop(self._heap))
                continue
            heapq.heappop(self._heap)
            batch.append(candidate)
        for item in skipped:
            heapq.heappush(self._heap, item)
        return batch if len(batch) > 1 else None

    def _dispatch_batch(self, batch: list[QueuedMessage], route: Route) -> None:
        """Send several messages as one ``rover.batch`` exchange.

        The batch envelope carries the *head* message's trace context,
        so wire/server spans of the exchange attach to the head's
        trace; every member still gets its own queue.wait span.
        """
        for message in batch:
            message.state = "inflight"
            message.attempts += 1
            if message.attempts > 1:
                self._m_retransmissions.inc()
            self._note_dispatch(message, route)
        self._inflight += 1
        self._m_batches.inc()
        slot = {"held": True}

        def release_slot() -> None:
            if slot["held"]:
                slot["held"] = False
                self._inflight -= 1

        def on_accepted() -> None:
            for message in batch:
                if message.state == "inflight":
                    message.state = "accepted"
            release_slot()
            self._pump()

        def on_reply(body: Any) -> None:
            release_slot()
            replies = body.get("replies", []) if isinstance(body, dict) else []
            for index, message in enumerate(batch):
                if message.state not in ("inflight", "accepted"):
                    continue
                message.state = "done"
                self._active.discard(message)
                if index < len(replies) and replies[index].get("ok"):
                    self._m_delivered.inc()
                    message.on_reply(replies[index].get("body"))
                else:
                    detail = (
                        replies[index].get("body") if index < len(replies) else None
                    )
                    self._m_failed.inc()
                    message.on_failed(
                        detail.get("error", "batch member failed")
                        if isinstance(detail, dict)
                        else "batch member failed"
                    )
            self._pump()

        def on_error(reason: str) -> None:
            release_slot()
            # A failure *during* transmit (Link.fail_inflight) surfaces
            # here before the link's transition listeners run, so the
            # memoized route may still point at the dead link — drop it
            # or the pump below re-dispatches straight into the outage.
            self._route_cache.clear()
            for message in batch:
                if message.state not in ("inflight", "accepted"):
                    continue
                if message.attempts >= self.max_attempts:
                    message.state = "done"
                    self._active.discard(message)
                    self._m_failed.inc()
                    message.on_failed(reason)
                else:
                    message.state = "queued"
                    backoff = self._backoff_delay(message.attempts)
                    self._note_retry(message, backoff, reason)
                    self.sim.schedule(backoff, self._requeue, message)
            self._pump()

        body = {
            "requests": [
                {"service": message.service, "body": message.body}
                for message in batch
            ]
        }
        if batch[0].trace is not None:
            body[TRACE_KEY] = list(batch[0].trace)
        route.send(batch[0].dst, "rover.batch", body, on_reply, on_error, on_accepted)

    def _note_dispatch(self, message: QueuedMessage, route: Route) -> None:
        """Record queue.wait + route.select spans and wait metrics."""
        waited = self.sim.now - message.last_queued_at
        self._m_queue_wait.labels(
            host=self.host.name, priority=message.priority.name.lower()
        ).observe(waited)
        self._m_service_bytes.labels(
            host=self.host.name, service=message.service
        ).inc(marshalled_size(message.body))
        if self.tracer.enabled and message.trace is not None:
            self.tracer.record(
                "queue.wait",
                message.trace,
                start=message.last_queued_at,
                end=self.sim.now,
                priority=message.priority.name.lower(),
                attempt=message.attempts,
            )
            self.tracer.record(
                "route.select",
                message.trace,
                start=self.sim.now,
                end=self.sim.now,
                route=route.name,
                kind=route.kind.name.lower(),
            )

    def _backoff_delay(self, attempts: int) -> float:
        """Capped exponential backoff with seeded jitter.

        The jitter factor draws from this scheduler's own RNG stream
        (``sched:<host>``), so retry timing is deterministic per seed
        yet decorrelated across hosts — reconnecting clients spread
        their retransmissions instead of firing in lockstep.
        """
        ceiling = min(self.max_backoff, self.base_backoff * (2 ** (attempts - 1)))
        return ceiling * (0.5 + 0.5 * self.rng.random())

    def _note_retry(self, message: QueuedMessage, backoff: float, reason: str) -> None:
        """Record the backoff between a failed attempt and its retry."""
        if self.tracer.enabled and message.trace is not None:
            self.tracer.record(
                "retransmit",
                message.trace,
                start=self.sim.now,
                end=self.sim.now + backoff,
                attempt=message.attempts,
                reason=reason,
            )

    def _dispatch(self, message: QueuedMessage, route: Route) -> None:
        message.state = "inflight"
        message.attempts += 1
        if message.attempts > 1:
            self._m_retransmissions.inc()
        self._note_dispatch(message, route)
        self._inflight += 1
        slot = {"held": True}

        def release_slot() -> None:
            if slot["held"]:
                slot["held"] = False
                self._inflight -= 1

        def on_accepted() -> None:
            # Store-and-forward custody: the channel is free, but the
            # message stays logically outstanding until its reply.
            if message.state == "inflight":
                message.state = "accepted"
            release_slot()
            self._pump()

        def on_reply(body: Any) -> None:
            if message.state not in ("inflight", "accepted"):
                return
            message.state = "done"
            self._active.discard(message)
            release_slot()
            self._m_delivered.inc()
            message.on_reply(body)
            self._pump()

        def on_error(reason: str) -> None:
            if message.state not in ("inflight", "accepted"):
                return
            release_slot()
            # See _dispatch_batch.on_error: mid-transmit failures reach
            # this callback before any up/down transition listener, so
            # the cached route for this destination may be dead.
            self._route_cache.clear()
            if message.attempts >= self.max_attempts:
                message.state = "done"
                self._active.discard(message)
                self._m_failed.inc()
                message.on_failed(reason)
            else:
                message.state = "queued"
                backoff = self._backoff_delay(message.attempts)
                self._note_retry(message, backoff, reason)
                self.sim.schedule(backoff, self._requeue, message)
            self._pump()

        route.send(
            message.dst, message.service, message.body, on_reply, on_error, on_accepted
        )

    def _requeue(self, message: QueuedMessage) -> None:
        if message.state != "queued":
            return
        message.last_queued_at = self.sim.now
        self._push(message)
        self._pump()
