"""HTTP front-end for Rover servers — the paper's CGI-style gateway.

The paper provides two Rover server implementations: one rides the
Common Gateway Interface of a stock httpd, the other is a standalone
server speaking a restricted HTTP subset.  "Both servers offer
identical functionality and communication interfaces to Rover client
applications."  This module is that equivalence in code:

* :class:`RoverHttpGateway` exposes the *same* service table the native
  RPC port uses (``rover.import`` etc.) at ``POST /rover/<op>`` with a
  marshalled body, sharing all server state (cache of applied request
  ids, object store, resolvers);
* :class:`HttpRoute` plugs HTTP delivery into the network scheduler as
  an alternative connection-based carrier, so a client can run its
  whole QRPC stream over HTTP instead of the native protocol.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.net.http import (
    DeferredHttpResponse,
    HttpClient,
    HttpRequest,
    HttpResponse,
    HttpServer,
)
from repro.net.message import MarshalError, marshal, unmarshal
from repro.net.scheduler import Route, RouteKind
from repro.net.simnet import Address, Host
from repro.net.transport import DelayedReply, Transport
from repro.sim import Simulator

GATEWAY_PREFIX = "/rover/"


class RoverHttpGateway:
    """Serve the Rover services over HTTP on the server's host."""

    def __init__(
        self,
        sim: Simulator,
        transport: Transport,
        http_server: HttpServer | None = None,
    ) -> None:
        self.sim = sim
        self.transport = transport
        self.http = http_server or HttpServer(sim, transport.host)
        self.requests_served = 0
        self.http.route(GATEWAY_PREFIX, self._handle)

    def _handle(self, request: HttpRequest, source: Address):
        if request.method != "POST":
            return HttpResponse(400, body=b"POST required")
        service = "rover." + request.path[len(GATEWAY_PREFIX):]
        try:
            body = unmarshal(request.body)
        except MarshalError as exc:
            return HttpResponse(400, body=str(exc).encode())
        ok, reply_body = self.transport.handle_request(service, body, source)
        delay = 0.0
        if isinstance(reply_body, DelayedReply):
            delay = reply_body.delay_s
            reply_body = reply_body.body
        self.requests_served += 1
        response = HttpResponse(
            200 if ok else 500,
            headers={"Content-Type": "application/x-rover"},
            body=marshal(reply_body),
        )
        if delay > 0:
            return DeferredHttpResponse(delay, response)
        return response


class HttpRoute(Route):
    """Scheduler route that carries QRPCs as HTTP POSTs to a gateway."""

    name = "http"
    kind = RouteKind.DIRECT

    def __init__(self, sim: Simulator, client: HttpClient, gateway_host: Host) -> None:
        self.sim = sim
        self.client = client
        self.gateway_host = gateway_host

    def available(self, dst: Host) -> bool:
        # The gateway host *is* the Rover server's host in the standard
        # topology; the route works whenever a link to it is up.
        if dst is not self.gateway_host:
            return False
        return any(
            link.is_up for link in self.client.host.links_to(self.gateway_host)
        )

    @property
    def quality(self) -> float:  # type: ignore[override]
        # Slightly below the native RPC carrier on the same links: the
        # textual framing costs more bytes, so prefer native when both
        # are available.
        best = max(
            (
                link.spec.bandwidth_bps
                for link in self.client.host.links_to(self.gateway_host)
                if link.is_up
            ),
            default=0.0,
        )
        return best * 0.9

    def send(
        self,
        dst: Host,
        service: str,
        body: Any,
        on_reply: Callable[[Any], None],
        on_error: Callable[[str], None],
        on_accepted: Callable[[], None],
    ) -> None:
        if not service.startswith("rover."):
            on_error(f"http route only carries rover services, not {service!r}")
            return
        path = GATEWAY_PREFIX + service[len("rover."):]

        def got(response: HttpResponse) -> None:
            try:
                payload = unmarshal(response.body)
            except MarshalError as exc:
                on_error(f"bad gateway reply: {exc}")
                return
            if response.status == 200:
                on_reply(payload)
            else:
                message = (
                    payload.get("error", "gateway error")
                    if isinstance(payload, dict)
                    else str(payload)
                )
                on_error(message)

        self.client.request(
            dst,
            HttpRequest("POST", path, body=marshal(body)),
            on_response=got,
            on_error=on_error,
        )
