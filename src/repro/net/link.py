"""Link specifications and connectivity policies.

The paper's testbed used four network configurations between an IBM
ThinkPad client and a DEC Alpha-class server:

========================  ============  =========  ==============
link                      bandwidth     latency    header model
========================  ============  =========  ==============
switched 10Mb/s Ethernet  10 Mbit/s     ~0.5 ms    40 B TCP/IP
2Mb/s AT&T WaveLAN        2 Mbit/s      ~2 ms      40 B TCP/IP
CSLIP over 14.4K dial-up  14.4 Kbit/s   ~100 ms    5 B (VJ compr.)
CSLIP over 2.4K dial-up   2.4 Kbit/s    ~150 ms    5 B (VJ compr.)
========================  ============  =========  ==============

(CSLIP = Serial Line IP with Van Jacobson TCP/IP header compression,
RFC 1144, exactly as in the paper.)  A :class:`LinkSpec` captures the
static characteristics; a :class:`ConnectivityPolicy` captures when the
link is up — always, on a periodic schedule (a user who docks for ten
minutes every hour), or following an explicit trace.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class LinkSpec:
    """Static characteristics of a point-to-point link.

    ``header_bytes`` is added per MTU-sized fragment, modelling
    TCP/IP (40 B) or VJ-compressed CSLIP (5 B) framing.
    """

    name: str
    bandwidth_bps: float
    latency_s: float
    header_bytes: int = 40
    mtu: int = 1460
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")
        if self.mtu <= 0:
            raise ValueError("mtu must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")

    def wire_bytes(self, payload_bytes: int) -> int:
        """Bytes actually carried for a payload, including framing."""
        fragments = max(1, math.ceil(payload_bytes / self.mtu))
        return payload_bytes + fragments * self.header_bytes

    def transmit_time(self, payload_bytes: int) -> float:
        """Serialization time (seconds) for a payload on this link."""
        return self.wire_bytes(payload_bytes) * 8.0 / self.bandwidth_bps

    def transfer_time(self, payload_bytes: int) -> float:
        """Serialization plus one-way propagation time."""
        return self.transmit_time(payload_bytes) + self.latency_s


ETHERNET_10M = LinkSpec("ethernet-10Mb", 10_000_000.0, 0.0005)
WAVELAN_2M = LinkSpec("wavelan-2Mb", 2_000_000.0, 0.002)
CSLIP_14_4 = LinkSpec("cslip-14.4k", 14_400.0, 0.100, header_bytes=5, mtu=296)
CSLIP_2_4 = LinkSpec("cslip-2.4k", 2_400.0, 0.150, header_bytes=5, mtu=296)

#: The paper's four configurations, fastest first.
STANDARD_LINKS: tuple[LinkSpec, ...] = (
    ETHERNET_10M,
    WAVELAN_2M,
    CSLIP_14_4,
    CSLIP_2_4,
)


class ConnectivityPolicy:
    """When a link is up.

    Implementations must be pure functions of time so that transfers
    can be validated over an interval and transitions pre-scheduled.
    """

    def is_up(self, t: float) -> bool:
        raise NotImplementedError

    def next_transition(self, t: float) -> Optional[float]:
        """Earliest time strictly after ``t`` at which up/down flips.

        ``None`` means the state never changes again.
        """
        raise NotImplementedError

    def up_through(self, t0: float, t1: float) -> bool:
        """True iff the link stays up for the whole interval [t0, t1]."""
        if not self.is_up(t0):
            return False
        transition = self.next_transition(t0)
        return transition is None or transition > t1


class AlwaysUp(ConnectivityPolicy):
    """Permanently connected (the paper's office LAN case)."""

    def is_up(self, t: float) -> bool:
        return True

    def next_transition(self, t: float) -> Optional[float]:
        return None


class AlwaysDown(ConnectivityPolicy):
    """Permanently disconnected (pure disconnected operation)."""

    def is_up(self, t: float) -> bool:
        return False

    def next_transition(self, t: float) -> Optional[float]:
        return None


class PeriodicSchedule(ConnectivityPolicy):
    """Alternating up/down phases, e.g. 60 s up then 240 s down.

    ``phase`` shifts the pattern start; at ``t = phase`` the link
    enters its first up period (or down period if ``start_up`` is
    False).  Before ``phase`` the link is in the *opposite* of the
    starting state, so a phase can model "disconnected until first
    dock".
    """

    def __init__(
        self,
        up_duration: float,
        down_duration: float,
        start_up: bool = True,
        phase: float = 0.0,
    ) -> None:
        if up_duration <= 0 or down_duration <= 0:
            raise ValueError("durations must be positive")
        self.up_duration = up_duration
        self.down_duration = down_duration
        self.start_up = start_up
        self.phase = phase
        self._period = up_duration + down_duration

    def _boundaries(self, t: float) -> tuple[float, float, float]:
        """(cycle start, mid boundary, cycle end) for the cycle holding t.

        Both :meth:`is_up` and :meth:`next_transition` derive from
        these same values, so they can never disagree at a boundary no
        matter how floating point rounds.
        """
        first = self.up_duration if self.start_up else self.down_duration
        cycle = math.floor((t - self.phase) / self._period)
        start = self.phase + cycle * self._period
        mid = start + first
        end = self.phase + (cycle + 1) * self._period
        return start, mid, end

    def is_up(self, t: float) -> bool:
        if t < self.phase:
            return not self.start_up
        __, mid, end = self._boundaries(t)
        in_first = t < mid
        if t >= end:  # float rounding pushed t past its computed cycle
            in_first = True
        return in_first if self.start_up else not in_first

    def next_transition(self, t: float) -> Optional[float]:
        if t < self.phase:
            return self.phase
        __, mid, end = self._boundaries(t)
        if t < mid:
            return mid
        if t < end:
            return end
        # Float rounding put t at/past the computed cycle end: the next
        # boundary is the following cycle's mid point.
        return end + (self.up_duration if self.start_up else self.down_duration)


class IntervalTrace(ConnectivityPolicy):
    """Explicit up intervals ``[(start, end), ...]``; down elsewhere.

    Intervals must be sorted and non-overlapping.
    """

    def __init__(self, up_intervals: Sequence[tuple[float, float]]) -> None:
        previous_end = -math.inf
        for start, end in up_intervals:
            if start >= end:
                raise ValueError(f"empty interval ({start}, {end})")
            if start < previous_end:
                raise ValueError("intervals must be sorted and disjoint")
            previous_end = end
        self.intervals = [(float(s), float(e)) for s, e in up_intervals]
        self._starts = [s for s, __ in self.intervals]

    def is_up(self, t: float) -> bool:
        index = bisect.bisect_right(self._starts, t) - 1
        if index < 0:
            return False
        start, end = self.intervals[index]
        return start <= t < end

    def next_transition(self, t: float) -> Optional[float]:
        index = bisect.bisect_right(self._starts, t) - 1
        if index >= 0:
            start, end = self.intervals[index]
            if t < end:
                return end
        if index + 1 < len(self.intervals):
            return self.intervals[index + 1][0]
        return None
