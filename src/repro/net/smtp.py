"""SMTP-style queued transport.

The paper: *"SMTP allows Rover to exploit E-mail for queued
communication"* — requests and replies ride through the mail
infrastructure, so the two endpoints never need to be connected at the
same time.  We model the minimum that preserves those semantics:

* a :class:`MailRelay` host that accepts, spools (persistently counts),
  and forwards messages whenever a link to the recipient is up;
* a :class:`Mailbox` per endpoint for sending and receiving mail;
* a :class:`MailRoute` plugging mail delivery into the
  :class:`~repro.net.scheduler.NetworkScheduler` as a connectionless
  route: requests go out as mail, the server answers with mail, and
  the pending-reply table correlates them by id.  The relay taking
  custody frees the scheduler's in-flight window (``on_accepted``).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.net.scheduler import Route, RouteKind
from repro.net.simnet import Address, Host, Link
from repro.net.transport import DelayedReply, RpcError, Transport
from repro.sim import Simulator

SUBMIT_SERVICE = "smtp.submit"
DELIVER_SERVICE = "smtp.deliver"


class MailRelay:
    """Store-and-forward spool on its own host.

    The relay keeps one FIFO spool per destination host and drains it
    whenever a link to that host comes up.
    """

    def __init__(self, sim: Simulator, transport: Transport) -> None:
        self.sim = sim
        self.transport = transport
        self.host = transport.host
        self._spool: dict[str, list[dict]] = {}
        self._forwarding: set[str] = set()
        self.accepted = 0
        self.forwarded = 0
        transport.register(SUBMIT_SERVICE, self._on_submit)
        for link in self.host.links:
            link.on_transition(self._on_link_transition)

    def watch_new_links(self) -> None:
        """Re-subscribe after links were added post-construction."""
        for link in self.host.links:
            link.on_transition(self._on_link_transition)

    def spooled(self, dst_name: Optional[str] = None) -> int:
        if dst_name is not None:
            return len(self._spool.get(dst_name, []))
        return sum(len(queue) for queue in self._spool.values())

    def _on_submit(self, body: Any, source: Address) -> Any:
        dst_name = body["to"]
        self._spool.setdefault(dst_name, []).append(body)
        self.accepted += 1
        self.sim.schedule(0.0, self._try_forward, dst_name)
        return {"spooled": True}

    def _on_link_transition(self, link: Link, is_up: bool) -> None:
        if not is_up:
            return
        peer = link.peer_of(self.host)
        self._try_forward(peer.name)

    def _try_forward(self, dst_name: str) -> None:
        if dst_name in self._forwarding:
            return
        queue = self._spool.get(dst_name)
        if not queue:
            return
        dst = self.host.network.hosts.get(dst_name)
        if dst is None or self.transport.best_link(dst) is None:
            return
        self._forwarding.add(dst_name)
        mail = queue[0]

        def done(reply: Any) -> None:
            self._forwarding.discard(dst_name)
            if queue and queue[0] is mail:
                queue.pop(0)
                self.forwarded += 1
            self._try_forward(dst_name)

        def failed(error: RpcError) -> None:
            # Leave the mail spooled; a later link-up retries it.
            self._forwarding.discard(dst_name)

        try:
            self.transport.call(dst, DELIVER_SERVICE, mail, done, failed)
        except RpcError:
            self._forwarding.discard(dst_name)


class Mailbox:
    """An endpoint's interface to the mail system."""

    def __init__(self, sim: Simulator, transport: Transport, relay: Host) -> None:
        self.sim = sim
        self.transport = transport
        self.relay = relay
        self._handlers: list[Callable[[Any, str], None]] = []
        self.sent = 0
        self.received = 0
        transport.register(DELIVER_SERVICE, self._on_deliver)

    def on_mail(self, handler: Callable[[Any, str], None]) -> None:
        """Register ``handler(body, from_host_name)`` for inbound mail."""
        self._handlers.append(handler)

    def send(
        self,
        dst_name: str,
        body: Any,
        on_spooled: Optional[Callable[[], None]] = None,
        on_error: Optional[Callable[[str], None]] = None,
    ) -> None:
        """Hand a message to the relay (requires a live link to it)."""
        mail = {"to": dst_name, "from": self.transport.host.name, "body": body}

        def spooled(reply: Any) -> None:
            self.sent += 1
            if on_spooled is not None:
                on_spooled()

        def failed(error: RpcError) -> None:
            if on_error is not None:
                on_error(str(error))

        try:
            self.transport.call(self.relay, SUBMIT_SERVICE, mail, spooled, failed)
        except RpcError as exc:
            if on_error is not None:
                on_error(str(exc))

    def _on_deliver(self, mail: Any, source: Address) -> Any:
        self.received += 1
        body = mail.get("body")
        sender = mail.get("from", "")
        for handler in list(self._handlers):
            handler(body, sender)
        return {"delivered": True}


class MailRoute(Route):
    """Scheduler route that carries request/reply over the mail system.

    Low quality (used only when nothing better is up, or on explicit
    QoS request) but available whenever the *relay* is reachable, even
    if the destination itself is not.
    """

    name = "smtp"
    quality = 1.0  # always worse than any live direct link
    kind = RouteKind.QUEUED

    def __init__(self, sim: Simulator, mailbox: Mailbox) -> None:
        self.sim = sim
        self.mailbox = mailbox
        self._next_id = 0
        self._pending: dict[str, tuple[Callable[[Any], None], Callable[[str], None]]] = {}
        mailbox.on_mail(self._on_mail)

    def available(self, dst: Host) -> bool:
        return self.mailbox.transport.best_link(self.mailbox.relay) is not None

    def send(
        self,
        dst: Host,
        service: str,
        body: Any,
        on_reply: Callable[[Any], None],
        on_error: Callable[[str], None],
        on_accepted: Callable[[], None],
    ) -> None:
        mail_id = f"{self.mailbox.transport.host.name}:mail:{self._next_id}"
        self._next_id += 1
        self._pending[mail_id] = (on_reply, on_error)
        request = {
            "kind": "qrpc-request",
            "id": mail_id,
            "service": service,
            "body": body,
            "reply_to": self.mailbox.transport.host.name,
        }

        def spooled() -> None:
            on_accepted()

        def failed(reason: str) -> None:
            self._pending.pop(mail_id, None)
            on_error(reason)

        self.mailbox.send(dst.name, request, on_spooled=spooled, on_error=failed)

    def _on_mail(self, body: Any, sender: str) -> None:
        if not isinstance(body, dict) or body.get("kind") != "qrpc-reply":
            return
        pending = self._pending.pop(body.get("id"), None)
        if pending is None:
            return
        on_reply, on_error = pending
        if body.get("ok", True):
            on_reply(body.get("body"))
        else:
            error = body.get("body")
            message = error.get("error", "remote error") if isinstance(error, dict) else str(error)
            on_error(message)


class MailRpcEndpoint:
    """Server-side adapter: executes mailed requests, mails back replies.

    Install on any host that should serve QRPCs arriving by mail; it
    dispatches into the same service table the direct RPC port uses.
    """

    def __init__(self, sim: Simulator, transport: Transport, mailbox: Mailbox) -> None:
        self.sim = sim
        self.transport = transport
        self.mailbox = mailbox
        self.served = 0
        mailbox.on_mail(self._on_mail)

    def _on_mail(self, body: Any, sender: str) -> None:
        if not isinstance(body, dict) or body.get("kind") != "qrpc-request":
            return
        source: Address = (sender, 0)
        ok, reply_body = self.transport.handle_request(
            body.get("service", ""), body.get("body"), source
        )
        delay = 0.0
        if isinstance(reply_body, DelayedReply):
            delay = reply_body.delay_s
            reply_body = reply_body.body
        self.served += 1
        reply = {
            "kind": "qrpc-reply",
            "id": body.get("id"),
            "ok": ok,
            "body": reply_body,
        }

        # Reply goes back through the relay; if the relay is unreachable
        # right now the reply is simply retried by the application's
        # QRPC retransmission, so best-effort is fine here.
        def transmit() -> None:
            self.mailbox.send(body.get("reply_to", sender), reply)

        if delay > 0:
            self.sim.schedule(delay, transmit)
        else:
            transmit()
