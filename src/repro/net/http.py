"""Minimal HTTP/1.0-style protocol over the simulated network.

The paper's Rover servers speak HTTP (one implementation rides CGI
behind a stock httpd, the other is a standalone server exposing a
restricted HTTP subset).  We reproduce the standalone flavour: textual
request/response framing (honest byte counts on the wire), a tiny
routing server, and a callback-based client.

Requests and responses are datagram-framed: one message per request,
one per response, addressed back to the client's ephemeral port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.simnet import Address, Host
from repro.net.transport import HTTP_PORT
from repro.sim import Simulator

_EPHEMERAL_BASE = 40_000


class HttpError(Exception):
    """Malformed HTTP framing."""


@dataclass
class HttpRequest:
    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def encode(self) -> bytes:
        lines = [f"{self.method} {self.path} HTTP/1.0"]
        headers = dict(self.headers)
        if self.body:
            headers.setdefault("Content-Length", str(len(self.body)))
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


@dataclass
class HttpResponse:
    status: int
    reason: str = ""
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def encode(self) -> bytes:
        reason = self.reason or _REASONS.get(self.status, "")
        lines = [f"HTTP/1.0 {self.status} {reason}"]
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


_REASONS = {
    200: "OK",
    302: "Moved Temporarily",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _split_head(data: bytes) -> tuple[list[str], bytes]:
    try:
        head, body = data.split(b"\r\n\r\n", 1)
    except ValueError as exc:
        raise HttpError("missing header terminator") from exc
    return head.decode("latin-1").split("\r\n"), body


def _parse_headers(lines: list[str]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        if ":" not in line:
            raise HttpError(f"bad header line {line!r}")
        name, value = line.split(":", 1)
        headers[name.strip()] = value.strip()
    return headers


def decode_request(data: bytes) -> HttpRequest:
    lines, body = _split_head(data)
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(f"bad request line {lines[0]!r}")
    method, path, __ = parts
    return HttpRequest(method, path, _parse_headers(lines[1:]), body)


def decode_response(data: bytes) -> HttpResponse:
    lines, body = _split_head(data)
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise HttpError(f"bad status line {lines[0]!r}")
    status = int(parts[1])
    reason = parts[2] if len(parts) == 3 else ""
    return HttpResponse(status, reason, _parse_headers(lines[1:]), body)


class DeferredHttpResponse:
    """Handler return value that delays the response transmission.

    Used to charge server-side compute time (e.g. a Rover gateway
    executing a shipped RDO) to virtual time before replying.
    """

    __slots__ = ("delay_s", "response")

    def __init__(self, delay_s: float, response: "HttpResponse") -> None:
        self.delay_s = delay_s
        self.response = response


RouteHandler = Callable[[HttpRequest, Address], "HttpResponse | DeferredHttpResponse"]


class HttpServer:
    """Routing HTTP server bound to port 80 of a host.

    Handlers are registered by path prefix; the longest matching prefix
    wins.  Handler exceptions become 500 responses.
    """

    def __init__(self, sim: Simulator, host: Host) -> None:
        self.sim = sim
        self.host = host
        self._routes: dict[str, RouteHandler] = {}
        self.requests_served = 0
        host.bind(HTTP_PORT, self._on_datagram)

    def route(self, prefix: str, handler: RouteHandler) -> None:
        self._routes[prefix] = handler

    def _resolve(self, path: str) -> Optional[RouteHandler]:
        best: Optional[str] = None
        for prefix in self._routes:
            if path.startswith(prefix) and (best is None or len(prefix) > len(best)):
                best = prefix
        return self._routes[best] if best is not None else None

    def _on_datagram(self, payload: bytes, source: Address) -> None:
        seq: Optional[str] = None
        try:
            request = decode_request(payload)
        except HttpError as exc:
            response = HttpResponse(400, body=str(exc).encode())
        else:
            seq = request.headers.get("X-Seq")
            handler = self._resolve(request.path)
            if handler is None:
                response = HttpResponse(404, body=b"no route")
            else:
                try:
                    response = handler(request, source)
                except Exception as exc:  # handler fault -> 500
                    response = HttpResponse(
                        500, body=f"{type(exc).__name__}: {exc}".encode()
                    )
            if response is None:
                # Handler took responsibility for replying later
                # (long-poll style) via _reply().
                self.requests_served += 1
                return
        delay = 0.0
        if isinstance(response, DeferredHttpResponse):
            delay = response.delay_s
            response = response.response
        if seq is not None:
            response.headers["X-Seq"] = seq
        self.requests_served += 1
        if delay > 0:
            self.sim.schedule(delay, self._reply, source, response)
        else:
            self._reply(source, response)

    def _reply(self, source: Address, response: HttpResponse) -> None:
        src_host = self.host.network.hosts.get(source[0])
        if src_host is None:
            return
        links = [link for link in self.host.links_to(src_host) if link.is_up]
        if not links:
            return  # client will time out
        links.sort(key=lambda link: -link.spec.bandwidth_bps)
        links[0].send(self.host, source[1], response.encode(), src_port=HTTP_PORT)


class HttpClient:
    """Callback-based HTTP client with per-client ephemeral port."""

    _next_port = _EPHEMERAL_BASE

    def __init__(self, sim: Simulator, host: Host) -> None:
        self.sim = sim
        self.host = host
        self.port = HttpClient._next_port
        HttpClient._next_port += 1
        self._next_seq = 0
        self._pending: dict[int, dict] = {}
        host.bind(self.port, self._on_datagram)

    def request(
        self,
        dst: Host,
        request: HttpRequest,
        on_response: Callable[[HttpResponse], None],
        on_error: Callable[[str], None],
        timeout: float = 60.0,
    ) -> None:
        links = [link for link in self.host.links_to(dst) if link.is_up]
        if not links:
            self.sim.schedule(0.0, on_error, "no usable link")
            return
        links.sort(key=lambda link: -link.spec.bandwidth_bps)
        seq = self._next_seq
        self._next_seq += 1
        request.headers.setdefault("X-Seq", str(seq))

        def expire() -> None:
            pending = self._pending.pop(seq, None)
            if pending is not None:
                on_error("timeout")

        timer = self.sim.schedule(timeout, expire)
        self._pending[seq] = {"on_response": on_response, "timer": timer}
        links[0].send(
            self.host,
            HTTP_PORT,
            request.encode(),
            src_port=self.port,
            on_failed=lambda reason: self._fail(seq, reason, on_error),
        )

    def get(
        self,
        dst: Host,
        path: str,
        on_response: Callable[[HttpResponse], None],
        on_error: Callable[[str], None],
        timeout: float = 60.0,
    ) -> None:
        self.request(dst, HttpRequest("GET", path), on_response, on_error, timeout)

    def _fail(self, seq: int, reason: str, on_error: Callable[[str], None]) -> None:
        pending = self._pending.pop(seq, None)
        if pending is not None:
            pending["timer"].cancel()
            on_error(reason)

    def _on_datagram(self, payload: bytes, source: Address) -> None:
        try:
            response = decode_response(payload)
        except HttpError:
            return
        if not self._pending:
            return
        echoed = response.headers.get("X-Seq")
        if echoed is not None and echoed.isdigit() and int(echoed) in self._pending:
            seq = int(echoed)
        else:
            # Fall back to oldest-pending for responses without an echo.
            seq = min(self._pending)
        pending = self._pending.pop(seq)
        pending["timer"].cancel()
        pending["on_response"](response)
