"""Compact deterministic marshalling.

Bandwidth simulation needs an honest byte count for every message, so
instead of pickling we encode a small set of value types into a compact
tagged binary format.  The encoding is:

* deterministic — the same value always encodes to the same bytes
  (dict entries are written in insertion order, which our protocols
  keep stable), and
* self-describing — ``unmarshal(marshal(x)) == x`` including the
  list/tuple distinction.

Supported types: ``None``, ``bool``, ``int`` (arbitrary precision),
``float``, ``str``, ``bytes``, ``list``, ``tuple``, ``dict``.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_TUPLE = b"t"
_TAG_DICT = b"d"


class MarshalError(Exception):
    """Raised for unsupported values or corrupt encodings."""


class Premarshalled(dict):
    """A dict that remembers its own encoding.

    The QRPC path marshals each request body up to three times — for
    size accounting at submit, again when batching, and again at
    transmit.  Wrapping the body in ``Premarshalled`` marshals it once:
    :func:`marshal`/:func:`marshalled_size` splice the cached ``raw``
    bytes instead of re-encoding, while the object still behaves as a
    plain dict for every reader (``body["urn"]``, ``.get`` etc.).

    The cache is computed eagerly at construction, so the wrapped dict
    must not be mutated afterwards — mutate-then-send would transmit
    the stale bytes.  Unmarshalling the cached bytes yields a plain
    dict, exactly as if the body had been encoded directly.
    """

    __slots__ = ("raw",)

    def __init__(self, value: dict) -> None:
        super().__init__(value)
        out = bytearray()
        _encode(dict(value), out)
        self.raw = bytes(out)


#: Maximum container nesting; beyond this the encoding is rejected
#: rather than risking interpreter recursion limits on hostile input.
MAX_DEPTH = 64


def _write_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise MarshalError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 1000:
            raise MarshalError("varint too long")


def _zigzag(value: int) -> int:
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _encode(value: Any, out: bytearray, depth: int = 0) -> None:
    if depth > MAX_DEPTH:
        raise MarshalError(f"nesting deeper than {MAX_DEPTH} levels")
    if isinstance(value, Premarshalled):
        out += value.raw
    elif value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        out += _TAG_INT
        _write_uvarint(out, _zigzag(value))
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += struct.pack(">d", value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _TAG_STR
        _write_uvarint(out, len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out += _TAG_BYTES
        _write_uvarint(out, len(value))
        out += bytes(value)
    elif isinstance(value, list):
        out += _TAG_LIST
        _write_uvarint(out, len(value))
        for item in value:
            _encode(item, out, depth + 1)
    elif isinstance(value, tuple):
        out += _TAG_TUPLE
        _write_uvarint(out, len(value))
        for item in value:
            _encode(item, out, depth + 1)
    elif isinstance(value, dict):
        out += _TAG_DICT
        _write_uvarint(out, len(value))
        for key, item in value.items():
            _encode(key, out, depth + 1)
            _encode(item, out, depth + 1)
    else:
        raise MarshalError(f"cannot marshal {type(value).__name__}: {value!r}")


def _decode(data: bytes, pos: int, depth: int = 0) -> tuple[Any, int]:
    if depth > MAX_DEPTH:
        raise MarshalError(f"nesting deeper than {MAX_DEPTH} levels")
    if pos >= len(data):
        raise MarshalError("truncated message")
    tag = data[pos : pos + 1]
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        raw, pos = _read_uvarint(data, pos)
        return _unzigzag(raw), pos
    if tag == _TAG_FLOAT:
        if pos + 8 > len(data):
            raise MarshalError("truncated float")
        return struct.unpack(">d", data[pos : pos + 8])[0], pos + 8
    if tag == _TAG_STR:
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise MarshalError("truncated string")
        try:
            text = data[pos : pos + length].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise MarshalError(f"invalid utf-8 in string: {exc}") from None
        return text, pos + length
    if tag == _TAG_BYTES:
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise MarshalError("truncated bytes")
        return data[pos : pos + length], pos + length
    if tag in (_TAG_LIST, _TAG_TUPLE):
        count, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode(data, pos, depth + 1)
            items.append(item)
        return (tuple(items) if tag == _TAG_TUPLE else items), pos
    if tag == _TAG_DICT:
        count, pos = _read_uvarint(data, pos)
        result: dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _decode(data, pos, depth + 1)
            value, pos = _decode(data, pos, depth + 1)
            result[key] = value
        return result, pos
    raise MarshalError(f"unknown tag {tag!r} at offset {pos - 1}")


def marshal(value: Any) -> bytes:
    """Encode ``value`` to bytes."""
    if isinstance(value, Premarshalled):
        return value.raw
    out = bytearray()
    _encode(value, out)
    return bytes(out)


def unmarshal(data: bytes) -> Any:
    """Decode bytes produced by :func:`marshal`.

    Raises :class:`MarshalError` on trailing garbage or corruption.
    """
    value, pos = _decode(data, 0)
    if pos != len(data):
        raise MarshalError(f"{len(data) - pos} trailing bytes after value")
    return value


def marshalled_size(value: Any) -> int:
    """Size in bytes of the encoded value (what a link would carry)."""
    if isinstance(value, Premarshalled):
        return len(value.raw)
    return len(marshal(value))


_SEAL_HEADER = struct.Struct(">I")  # CRC32 of the sealed body


def seal(data: bytes) -> bytes:
    """Prefix ``data`` with a CRC32 so in-flight corruption is detectable.

    The wire envelope carries the seal; :func:`unseal` verifies it
    before any unmarshalling happens, so a flipped byte surfaces as a
    :class:`MarshalError` instead of a silently wrong value.
    """
    return _SEAL_HEADER.pack(zlib.crc32(data)) + data


def unseal(data: bytes) -> bytes:
    """Verify and strip the CRC32 prefix added by :func:`seal`.

    Raises :class:`MarshalError` when the frame is too short to carry
    its checksum or the checksum does not match the body.
    """
    if len(data) < _SEAL_HEADER.size:
        raise MarshalError("sealed frame shorter than its checksum")
    (crc,) = _SEAL_HEADER.unpack_from(data)
    body = data[_SEAL_HEADER.size:]
    if zlib.crc32(body) != crc:
        raise MarshalError("sealed frame failed its CRC32 check")
    return body
