"""Compact deterministic marshalling.

Bandwidth simulation needs an honest byte count for every message, so
instead of pickling we encode a small set of value types into a compact
tagged binary format.  The encoding is:

* deterministic — the same value always encodes to the same bytes
  (dict entries are written in insertion order, which our protocols
  keep stable), and
* self-describing — ``unmarshal(marshal(x)) == x`` including the
  list/tuple distinction.

Supported types: ``None``, ``bool``, ``int`` (arbitrary precision),
``float``, ``str``, ``bytes``, ``list``, ``tuple``, ``dict``.

Decode path (repro.speed)
-------------------------

The decoder runs over any buffer — :func:`unmarshal` accepts ``bytes``,
``bytearray``, or ``memoryview`` — and :func:`unseal` hands back a
zero-copy ``memoryview`` of the frame body, so a received frame is
copied exactly once: when a ``bytes``/``str`` payload is materialized
into its final decoded position.  No ``memoryview`` ever appears in a
decoded value.  Dict keys are interned against the small fixed protocol
vocabulary (:data:`_PROTOCOL_KEYS`) so the thousands of envelopes in a
drain share one ``"status"`` string and dict lookups compare by
pointer.  :func:`marshalled_size` computes sizes arithmetically without
building the encoding.
"""

from __future__ import annotations

import struct
import sys
import zlib
from typing import Any

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_TUPLE = b"t"
_TAG_DICT = b"d"

# Integer tag values for the decoder's dispatch: indexing a buffer
# yields an int, and comparing ints avoids the one-byte slice per value
# the old decoder allocated.
_T_NONE = _TAG_NONE[0]
_T_TRUE = _TAG_TRUE[0]
_T_FALSE = _TAG_FALSE[0]
_T_INT = _TAG_INT[0]
_T_FLOAT = _TAG_FLOAT[0]
_T_STR = _TAG_STR[0]
_T_BYTES = _TAG_BYTES[0]
_T_LIST = _TAG_LIST[0]
_T_TUPLE = _TAG_TUPLE[0]
_T_DICT = _TAG_DICT[0]

_UNPACK_FLOAT = struct.Struct(">d").unpack_from

#: The protocol's fixed dict-key vocabulary.  Decoded dict keys found
#: here are replaced by the shared interned instance: envelopes carry
#: the same dozen keys thousands of times per drain, and pointer-equal
#: keys make both the allocation and the subsequent dict lookups cheap.
#: Missing entries are harmless (the decoded string is used as-is).
_PROTOCOL_KEYS: dict[str, str] = {
    key: sys.intern(key)
    for key in (
        "ack",
        "args",
        "base_version",
        "body",
        "client",
        "clients",
        "data",
        "defs",
        "epoch",
        "error",
        "from",
        "host",
        "id",
        "index",
        "inflight",
        "kind",
        "kwargs",
        "link",
        "method",
        "name",
        "ok",
        "op",
        "primary",
        "queued",
        "records",
        "reply_to",
        "reports",
        "req",
        "request",
        "result",
        "seq",
        "service",
        "status",
        "subject",
        "time",
        "urn",
        "urns",
        "value",
        "version",
        "wire",
    )
}


class _CodecStats:
    """Process-wide codec counters (attribute mutation keeps the module
    free of ``global`` rebinding, which the effect lint flags)."""

    __slots__ = ("marshal_size_fast_total",)

    def __init__(self) -> None:
        self.marshal_size_fast_total = 0


#: Counters proving the fast paths are taken — ``marshal_size_fast_total``
#: counts :func:`marshalled_size` calls answered from a cached
#: ``Premarshalled.raw`` length without re-encoding.
codec_stats = _CodecStats()


class MarshalError(Exception):
    """Raised for unsupported values or corrupt encodings."""


class Premarshalled(dict):
    """A dict that remembers its own encoding.

    The QRPC path marshals each request body up to three times — for
    size accounting at submit, again when batching, and again at
    transmit.  Wrapping the body in ``Premarshalled`` marshals it once:
    :func:`marshal`/:func:`marshalled_size` splice the cached ``raw``
    bytes instead of re-encoding, while the object still behaves as a
    plain dict for every reader (``body["urn"]``, ``.get`` etc.).

    The cache is computed eagerly at construction, so the wrapped dict
    must not be mutated afterwards — mutate-then-send would transmit
    the stale bytes.  Unmarshalling the cached bytes yields a plain
    dict, exactly as if the body had been encoded directly.
    """

    __slots__ = ("raw",)

    def __init__(self, value: dict) -> None:
        super().__init__(value)
        out = bytearray()
        _encode(dict(value), out)
        self.raw = bytes(out)


#: Maximum container nesting; beyond this the encoding is rejected
#: rather than risking interpreter recursion limits on hostile input.
MAX_DEPTH = 64


def _write_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise MarshalError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 1000:
            raise MarshalError("varint too long")


def _zigzag(value: int) -> int:
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _encode(value: Any, out: bytearray, depth: int = 0) -> None:
    if depth > MAX_DEPTH:
        raise MarshalError(f"nesting deeper than {MAX_DEPTH} levels")
    if isinstance(value, Premarshalled):
        out += value.raw
    elif value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        out += _TAG_INT
        _write_uvarint(out, _zigzag(value))
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += struct.pack(">d", value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _TAG_STR
        _write_uvarint(out, len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out += _TAG_BYTES
        _write_uvarint(out, len(value))
        out += bytes(value)
    elif isinstance(value, list):
        out += _TAG_LIST
        _write_uvarint(out, len(value))
        for item in value:
            _encode(item, out, depth + 1)
    elif isinstance(value, tuple):
        out += _TAG_TUPLE
        _write_uvarint(out, len(value))
        for item in value:
            _encode(item, out, depth + 1)
    elif isinstance(value, dict):
        out += _TAG_DICT
        _write_uvarint(out, len(value))
        for key, item in value.items():
            _encode(key, out, depth + 1)
            _encode(item, out, depth + 1)
    else:
        raise MarshalError(f"cannot marshal {type(value).__name__}: {value!r}")


def _decode(data: Any, pos: int, depth: int = 0) -> tuple[Any, int]:
    """Decode one value starting at ``pos`` over any buffer.

    ``data`` may be ``bytes``, ``bytearray``, or a ``memoryview`` —
    indexing yields ints either way, so the hot loop never allocates
    one-byte slices.  Payload slices are materialized (``bytes``/
    ``str``) at their final position; no view escapes into the result.
    """
    if depth > MAX_DEPTH:
        raise MarshalError(f"nesting deeper than {MAX_DEPTH} levels")
    size = len(data)
    if pos >= size:
        raise MarshalError("truncated message")
    tag = data[pos]
    pos += 1
    if tag == _T_STR:
        length, pos = _read_uvarint(data, pos)
        end = pos + length
        if end > size:
            raise MarshalError("truncated string")
        try:
            text = str(data[pos:end], "utf-8")
        except UnicodeDecodeError as exc:
            raise MarshalError(f"invalid utf-8 in string: {exc}") from None
        return text, end
    if tag == _T_INT:
        raw, pos = _read_uvarint(data, pos)
        return (raw >> 1) ^ -(raw & 1), pos
    if tag == _T_DICT:
        count, pos = _read_uvarint(data, pos)
        interned = _PROTOCOL_KEYS
        result: dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _decode(data, pos, depth + 1)
            if type(key) is str:
                key = interned.get(key, key)
            value, pos = _decode(data, pos, depth + 1)
            result[key] = value
        return result, pos
    if tag == _T_BYTES:
        length, pos = _read_uvarint(data, pos)
        end = pos + length
        if end > size:
            raise MarshalError("truncated bytes")
        return bytes(data[pos:end]), end
    if tag == _T_LIST or tag == _T_TUPLE:
        count, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode(data, pos, depth + 1)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_FLOAT:
        if pos + 8 > size:
            raise MarshalError("truncated float")
        return _UNPACK_FLOAT(data, pos)[0], pos + 8
    raise MarshalError(f"unknown tag {bytes(data[pos - 1 : pos])!r} at offset {pos - 1}")


def marshal(value: Any) -> bytes:
    """Encode ``value`` to bytes."""
    if isinstance(value, Premarshalled):
        return value.raw
    out = bytearray()
    _encode(value, out)
    return bytes(out)


def unmarshal(data: Any) -> Any:
    """Decode a buffer produced by :func:`marshal`.

    Accepts ``bytes``, ``bytearray``, or ``memoryview`` (the transport
    hands the :func:`unseal` view straight in).  Raises
    :class:`MarshalError` on trailing garbage or corruption.
    """
    value, pos = _decode(data, 0)
    if pos != len(data):
        raise MarshalError(f"{len(data) - pos} trailing bytes after value")
    return value


def _size(value: Any, depth: int) -> int:
    """Encoded size of ``value`` computed without building the encoding."""
    if depth > MAX_DEPTH:
        raise MarshalError(f"nesting deeper than {MAX_DEPTH} levels")
    if isinstance(value, Premarshalled):
        return len(value.raw)
    if value is None or value is True or value is False:
        return 1
    if isinstance(value, int):
        zigzag = value * 2 if value >= 0 else -value * 2 - 1
        return 1 + max(1, (zigzag.bit_length() + 6) // 7)
    if isinstance(value, float):
        return 9
    if isinstance(value, str):
        # ASCII (the protocol's common case) encodes 1:1, so the UTF-8
        # byte length is known without running the encoder.
        length = len(value) if value.isascii() else len(value.encode("utf-8"))
        return 1 + _uvarint_len(length) + length
    if isinstance(value, (bytes, bytearray)):
        length = len(value)
        return 1 + _uvarint_len(length) + length
    if isinstance(value, (list, tuple)):
        total = 1 + _uvarint_len(len(value))
        for item in value:
            total += _size(item, depth + 1)
        return total
    if isinstance(value, dict):
        total = 1 + _uvarint_len(len(value))
        for key, item in value.items():
            total += _size(key, depth + 1)
            total += _size(item, depth + 1)
        return total
    raise MarshalError(f"cannot marshal {type(value).__name__}: {value!r}")


def _uvarint_len(value: int) -> int:
    return max(1, (value.bit_length() + 6) // 7)


def marshalled_size(value: Any) -> int:
    """Size in bytes of the encoded value (what a link would carry).

    Never builds the encoding: a :class:`Premarshalled` answers from
    its cached length (counted in ``codec_stats.marshal_size_fast_total``)
    and everything else is sized arithmetically.
    """
    if isinstance(value, Premarshalled):
        codec_stats.marshal_size_fast_total += 1
        return len(value.raw)
    return _size(value, 0)


_SEAL_HEADER = struct.Struct(">I")  # CRC32 of the sealed body


def seal(data: bytes) -> bytes:
    """Prefix ``data`` with a CRC32 so in-flight corruption is detectable.

    The wire envelope carries the seal; :func:`unseal` verifies it
    before any unmarshalling happens, so a flipped byte surfaces as a
    :class:`MarshalError` instead of a silently wrong value.
    """
    return _SEAL_HEADER.pack(zlib.crc32(data)) + data


def unseal(data: bytes) -> memoryview:
    """Verify and strip the CRC32 prefix added by :func:`seal`.

    Returns a zero-copy ``memoryview`` of the body — the decoder
    consumes buffers directly, so the received frame is never copied
    just to drop its four-byte header.  (``memoryview`` compares equal
    to ``bytes``; call ``.tobytes()`` if an owned copy is needed.)

    Raises :class:`MarshalError` when the frame is too short to carry
    its checksum or the checksum does not match the body.
    """
    if len(data) < _SEAL_HEADER.size:
        raise MarshalError("sealed frame shorter than its checksum")
    (crc,) = _SEAL_HEADER.unpack_from(data)
    body = memoryview(data)[_SEAL_HEADER.size:]
    if zlib.crc32(body) != crc:
        raise MarshalError("sealed frame failed its CRC32 check")
    return body
