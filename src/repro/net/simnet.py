"""Hosts, point-to-point links, and the transmission model.

The model is store-and-forward over point-to-point links, matching the
paper's client/server topology (a mobile host talking to its home
server over whichever line is currently plugged in):

* Each direction of a link is a serial line: a transfer occupies the
  line for ``wire_bytes * 8 / bandwidth`` seconds starting when the
  line is free (FIFO queueing), then propagates for ``latency``.
* If the link's connectivity policy says the link drops while the
  transfer is on the wire, the transfer fails and the sender's failure
  callback runs at the drop time.  Bytes already spent are lost, which
  is what makes retransmission policy interesting for the scheduler.
* Random loss (``LinkSpec.loss_rate``) fails a transfer at its would-be
  delivery time, modelling a timeout-detected loss.

Hosts expose numbered ports; binding a port installs a handler that
receives ``(payload_bytes, source_address)``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim import Simulator, make_rng
from repro.net.link import AlwaysUp, ConnectivityPolicy, LinkSpec

Address = tuple[str, int]
PortHandler = Callable[[bytes, Address], None]


class LinkDown(Exception):
    """Raised when sending on a link that is currently down."""


class NetworkError(Exception):
    """Topology or addressing misuse."""


class Host:
    """A named endpoint with ports and attached links."""

    def __init__(self, network: "Network", name: str) -> None:
        self.network = network
        self.name = name
        self.links: list["Link"] = []
        self._links_by_peer: dict[str, list["Link"]] = {}
        self._ports: dict[int, PortHandler] = {}

    def bind(self, port: int, handler: PortHandler) -> None:
        """Install ``handler`` for inbound payloads on ``port``."""
        if port in self._ports:
            raise NetworkError(f"{self.name}: port {port} already bound")
        self._ports[port] = handler

    def unbind(self, port: int) -> None:
        self._ports.pop(port, None)

    def take_ports(self) -> dict[int, PortHandler]:
        """Unbind every port at once and return the old bindings.

        Models a process crash: the sockets close, traffic to the host
        now counts as ``dropped_to_unbound``.  Pair with
        :meth:`restore_ports` when the process restarts.
        """
        taken, self._ports = self._ports, {}
        return taken

    def restore_ports(self, ports: dict[int, PortHandler]) -> None:
        """Re-install bindings saved by :meth:`take_ports`."""
        for port, handler in ports.items():
            self.bind(port, handler)

    def links_to(self, peer: "Host") -> list["Link"]:
        """All links attached to both this host and ``peer``.

        Served from a per-peer index kept by ``Network.connect`` — the
        home server has one link per client, so the old full scan made
        every server-side send O(clients).
        """
        return list(self._links_by_peer.get(peer.name, ()))

    def deliver(self, port: int, payload: bytes, source: Address) -> None:
        handler = self._ports.get(port)
        if handler is None:
            # Mirror real networks: traffic to an unbound port vanishes.
            self.network.dropped_to_unbound += 1
            return
        handler(payload, source)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name}>"


class Medium:
    """A shared broadcast channel (e.g. one WaveLAN cell).

    Point-to-point links model dedicated wires; a 2 Mbit/s wireless
    cell is *shared* — every attached host's transmission serializes on
    the same air time.  Links created with ``medium=`` contend on this
    object's single busy-until clock instead of per-direction clocks.
    """

    __slots__ = ("name", "busy_until", "bytes_carried")

    def __init__(self, name: str = "medium") -> None:
        self.name = name
        self.busy_until = 0.0
        self.bytes_carried = 0


class Delivery:
    """One planned arrival of a payload at the receiving host.

    A normal send produces exactly one; a fault injector installed on
    the link (see ``Link.fault_injector``) may rewrite it into zero or
    more — dropping it (``fail_reason`` set), duplicating it, delaying
    it, or corrupting its bytes.
    """

    __slots__ = ("time", "payload", "fail_reason")

    def __init__(
        self, time: float, payload: bytes, fail_reason: Optional[str] = None
    ) -> None:
        self.time = time
        self.payload = payload
        self.fail_reason = fail_reason


class _Transfer:
    """An in-flight transfer on one direction of a link.

    Carries everything its completion needs so the transmit path
    allocates no per-delivery closure: :meth:`complete` is a bound
    method handed straight to the simulator (repro.speed — closures
    captured six cells each and dominated allocation on 10k-client
    drains).
    """

    __slots__ = (
        "link",
        "receiver",
        "port",
        "source",
        "delivery",
        "fail",
        "charge",
        "deliver_event",
        "done",
    )

    def __init__(
        self,
        link: "Link",
        receiver: "Host",
        port: int,
        source: Address,
        delivery: Delivery,
        fail: Callable[[str], None],
        charge: bool,
    ) -> None:
        self.link = link
        self.receiver = receiver
        self.port = port
        self.source = source
        self.delivery = delivery
        self.fail = fail
        self.charge = charge
        self.deliver_event: Any = None
        self.done = False

    def complete(self) -> None:
        if self.done:
            return
        self.done = True
        link = self.link
        link._note_transfer_done()
        delivery = self.delivery
        if delivery.fail_reason is not None:
            link.transfers_failed += 1
            self.fail(delivery.fail_reason)
            return
        if self.charge:
            link.bytes_carried += link.spec.wire_bytes(len(delivery.payload))
        self.receiver.deliver(self.port, delivery.payload, self.source)


class _FailOnce:
    """Collapse a send's possibly-duplicated deliveries to one failure report.

    A ``send()`` has one caller-visible outcome; injected duplicates
    must not fire the failure callback more than once.  (Plain object
    instead of a closure over a dict — transmit path is allocation
    sensitive.)
    """

    __slots__ = ("fail", "reported")

    def __init__(self, fail: Callable[[str], None]) -> None:
        self.fail = fail
        self.reported = False

    def __call__(self, reason: str) -> None:
        if self.reported:
            return
        self.reported = True
        self.fail(reason)


def _ignore_failure(reason: str) -> None:
    return None


class Link:
    """A duplex point-to-point link between two hosts."""

    def __init__(
        self,
        network: "Network",
        name: str,
        host_a: Host,
        host_b: Host,
        spec: LinkSpec,
        policy: ConnectivityPolicy,
        medium: Optional[Medium] = None,
    ) -> None:
        self.network = network
        self.name = name
        self.host_a = host_a
        self.host_b = host_b
        self.spec = spec
        self.policy = policy
        self.medium = medium
        self.sim = network.sim
        self.bytes_carried = 0
        self.transfers_failed = 0
        self._busy_until = {host_a.name: 0.0, host_b.name: 0.0}
        self._inflight: list[_Transfer] = []
        self._inflight_done = 0
        self._listeners: list[Callable[["Link", bool], None]] = []
        self._loss_rng = make_rng(network.seed, f"loss:{name}")
        #: Optional chaos hook: an object with
        #: ``plan(link, delivery) -> list[Delivery]`` consulted on every
        #: send (see :class:`repro.chaos.FaultyLink`).
        self.fault_injector: Optional[Any] = None
        self._watch_transitions()

    # -- connectivity ---------------------------------------------------

    @property
    def is_up(self) -> bool:
        return self.policy.is_up(self.sim.now)

    def on_transition(self, listener: Callable[["Link", bool], None]) -> None:
        """Register for up/down notifications: ``listener(link, is_up)``."""
        self._listeners.append(listener)

    def _watch_transitions(self) -> None:
        when = self.policy.next_transition(self.sim.now)
        if when is None:
            return
        self.sim.schedule_at(when, self._handle_transition)

    def _handle_transition(self) -> None:
        up = self.is_up
        if not up:
            self._fail_inflight("link dropped")
        for listener in list(self._listeners):
            listener(self, up)
        self._watch_transitions()

    def _fail_inflight(self, reason: str) -> int:
        # Swap the list first and walk it in send order: a failure
        # callback may issue new sends, which must not be failed too.
        transfers, self._inflight = self._inflight, []
        self._inflight_done = 0
        failed = 0
        for transfer in transfers:
            if transfer.done:
                continue
            transfer.done = True
            transfer.deliver_event.cancel()
            self.transfers_failed += 1
            failed += 1
            transfer.fail(reason)
        return failed

    def _note_transfer_done(self) -> None:
        """Amortized, order-preserving cleanup of completed transfers.

        Completion marks the transfer done; the list is compacted only
        when completed entries pile up (the old per-completion
        ``list.remove`` was O(n) per delivery).
        """
        self._inflight_done += 1
        done = self._inflight_done
        if done > 32 and done * 2 > len(self._inflight):
            self._inflight = [t for t in self._inflight if not t.done]
            self._inflight_done = 0

    def fail_inflight(self, reason: str) -> int:
        """Fail every in-flight transfer (e.g. the peer process crashed).

        Returns the number of transfers failed.  Each sender's failure
        callback runs immediately with ``reason``.
        """
        return self._fail_inflight(reason)

    # -- transmission ---------------------------------------------------

    def peer_of(self, host: Host) -> Host:
        if host is self.host_a:
            return self.host_b
        if host is self.host_b:
            return self.host_a
        raise NetworkError(f"{host.name} is not attached to link {self.name}")

    def queue_delay(self, sender: Host) -> float:
        """Seconds until the sender-side line (or shared medium) is free."""
        if self.medium is not None:
            return max(0.0, self.medium.busy_until - self.sim.now)
        return max(0.0, self._busy_until[sender.name] - self.sim.now)

    def send(
        self,
        sender: Host,
        port: int,
        payload: bytes,
        on_failed: Optional[Callable[[str], None]] = None,
        src_port: int = 0,
    ) -> float:
        """Transmit ``payload`` to the peer host's ``port``.

        Returns the scheduled delivery time.  Raises :class:`LinkDown`
        if the link is down *now*; later failures (drop mid-transfer,
        random loss) are reported through ``on_failed``.  ``src_port``
        is what the receiver sees as the reply port.
        """
        receiver = self.peer_of(sender)
        now = self.sim.now
        if not self.policy.is_up(now):
            raise LinkDown(f"link {self.name} is down at t={now:.3f}")

        tx_time = self.spec.transmit_time(len(payload))
        if self.medium is not None:
            # Shared channel: every attached host contends for air time.
            start = max(now, self.medium.busy_until)
            end_of_tx = start + tx_time
            self.medium.busy_until = end_of_tx
            self.medium.bytes_carried += self.spec.wire_bytes(len(payload))
        else:
            start = max(now, self._busy_until[sender.name])
            end_of_tx = start + tx_time
            self._busy_until[sender.name] = end_of_tx
        arrival = end_of_tx + self.spec.latency_s

        fail = on_failed if on_failed is not None else _ignore_failure
        lost = self.spec.loss_rate > 0 and self._loss_rng.random() < self.spec.loss_rate

        source: Address = (sender.name, src_port)

        planned = Delivery(arrival, payload, "packet loss" if lost else None)
        if self.fault_injector is None:
            # Common case: one delivery, no duplicate-collapse shim.
            self._schedule_delivery(receiver, port, source, planned, fail, charge=True)
            return arrival

        # The injector sees the link's own loss outcome and may
        # rewrite the plan: drop, duplicate, delay, corrupt.
        deliveries = self.fault_injector.plan(self, planned) or [planned]
        fail_once = _FailOnce(fail)
        for index, delivery in enumerate(deliveries):
            # Only the first copy is charged for wire bytes: injected
            # duplicates model network-level replays, not extra sends.
            self._schedule_delivery(
                receiver, port, source, delivery, fail_once, charge=(index == 0)
            )
        return arrival

    def _schedule_delivery(
        self,
        receiver: Host,
        port: int,
        source: Address,
        delivery: Delivery,
        fail: Callable[[str], None],
        charge: bool,
    ) -> None:
        transfer = _Transfer(self, receiver, port, source, delivery, fail, charge)
        transfer.deliver_event = self.sim.schedule_at(delivery.time, transfer.complete)
        self._inflight.append(transfer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.is_up else "down"
        return f"<Link {self.name} {self.host_a.name}<->{self.host_b.name} {state}>"


class Network:
    """The topology: hosts plus the links between them."""

    def __init__(self, sim: Simulator, seed: int = 0) -> None:
        self.sim = sim
        self.seed = seed
        self.hosts: dict[str, Host] = {}
        self._links: dict[str, Link] = {}
        self.dropped_to_unbound = 0

    def host(self, name: str) -> Host:
        """Create (or fetch) the host with ``name``."""
        if name not in self.hosts:
            self.hosts[name] = Host(self, name)
        return self.hosts[name]

    def medium(self, name: str = "cell") -> Medium:
        """Create a shared broadcast channel for `connect(..., medium=)`."""
        return Medium(name)

    def connect(
        self,
        host_a: Host,
        host_b: Host,
        spec: LinkSpec,
        policy: Optional[ConnectivityPolicy] = None,
        name: Optional[str] = None,
        medium: Optional[Medium] = None,
    ) -> Link:
        """Attach a duplex link between two hosts.

        Links sharing a ``medium`` contend for the same air time —
        model a wireless cell by giving every client-to-base link the
        same medium.
        """
        if host_a is host_b:
            raise NetworkError("cannot link a host to itself")
        link_name = name or f"{host_a.name}--{host_b.name}:{spec.name}"
        if link_name in self._links:
            raise NetworkError(f"duplicate link name {link_name}")
        link = Link(
            self, link_name, host_a, host_b, spec, policy or AlwaysUp(), medium=medium
        )
        self._links[link_name] = link
        host_a.links.append(link)
        host_b.links.append(link)
        host_a._links_by_peer.setdefault(host_b.name, []).append(link)
        host_b._links_by_peer.setdefault(host_a.name, []).append(link)
        return link

    def link(self, name: str) -> Link:
        return self._links[name]

    @property
    def links(self) -> list[Link]:
        return list(self._links.values())
