"""Object-level messaging and request/reply RPC.

The transport sits between raw links and the Rover layers above:

* :class:`Transport` marshals Python values, picks a link to the
  destination host, and delivers to a bound port on the far side.
* :meth:`Transport.call` adds request/reply correlation with timeouts —
  a conventional *blocking* RPC in the Birrell/Nelson sense.  Rover's
  QRPC is built on top of this in :mod:`repro.core.qrpc`; the blocking
  form also serves as the paper's baseline ("non-queued RPC") in the
  benchmarks.

Replies travel back over the same link that carried the request, so a
reply can fail independently if the link drops in between — exactly
the window that makes at-most-once duplicate suppression necessary at
the QRPC layer.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Optional

from repro.net.link import LinkSpec
from repro.net.message import (
    MarshalError,
    Premarshalled,
    marshal,
    seal,
    unmarshal,
    unseal,
)
from repro.net.simnet import Address, Host, Link, LinkDown
from repro.obs import Observatory
from repro.obs.trace import TRACE_KEY, parse_context
from repro.sim import Simulator

# One-byte framing marker ahead of every transport payload.
_RAW = b"R"
_COMPRESSED = b"Z"

# Well-known ports.
RPC_PORT = 530
HTTP_PORT = 80
SMTP_PORT = 25

MessageHandler = Callable[[Any, Address], None]
RequestHandler = Callable[[Any, Address], Any]


class RpcError(Exception):
    """A call failed (link down, lost, or remote error)."""


class RpcTimeout(RpcError):
    """No reply arrived within the timeout."""


class DelayedReply:
    """A service handler's way to charge virtual compute time.

    Returning ``DelayedReply(0.030, body)`` makes the carrier transmit
    ``body`` 30 virtual milliseconds after the request was dispatched —
    modelling server-side execution (e.g. running a shipped RDO).
    """

    __slots__ = ("delay_s", "body")

    def __init__(self, delay_s: float, body: Any) -> None:
        self.delay_s = delay_s
        self.body = body


class AsyncReply:
    """A service handler's way to defer its reply past its own return.

    A handler that cannot answer until some later simulator event (the
    replication layer waiting for backup acknowledgements) returns an
    ``AsyncReply``; whoever holds it calls :meth:`complete` when the
    reply body is finally known.  The carrier that dispatched the
    request binds a sink to transmit the body; completion and binding
    may happen in either order.  A reply that is *never* completed is a
    reply that was never sent — the caller's timeout handles it, which
    is exactly the semantics a deposed primary needs.
    """

    __slots__ = ("_sink", "_done", "_body")

    def __init__(self) -> None:
        self._sink: Optional[Callable[[Any], None]] = None
        self._done = False
        self._body: Any = None

    @property
    def completed(self) -> bool:
        return self._done

    def complete(self, body: Any) -> None:
        """Supply the reply body; idempotent (first completion wins)."""
        if self._done:
            return
        self._done = True
        self._body = body
        if self._sink is not None:
            sink, self._sink = self._sink, None
            sink(body)

    def bind(self, sink: Callable[[Any], None]) -> None:
        """Attach the transmit path; fires immediately if already done."""
        if self._done:
            sink(self._body)
        else:
            self._sink = sink


class Transport:
    """Per-host object transport.

    One :class:`Transport` is created per host; it owns the host's RPC
    port and hands inbound datagrams to registered handlers.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        compress_threshold: Optional[int] = None,
        obs: Optional[Observatory] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self._handlers: dict[int, MessageHandler] = {}
        self._request_handlers: dict[str, RequestHandler] = {}
        self._next_call_id = 0
        self._pending_calls: dict[str, dict[str, Any]] = {}
        self.obs = obs if obs is not None else Observatory()
        self.tracer = self.obs.tracer
        registry = self.obs.registry
        self._m_bytes = registry.counter(
            "transport_bytes_sent_total",
            "Marshalled payload bytes handed to links",
            labelnames=("host",),
        ).labels(host=host.name)
        self._m_messages = registry.counter(
            "transport_messages_sent_total",
            "Payloads handed to links",
            labelnames=("host",),
        ).labels(host=host.name)
        #: Compress payloads larger than this many marshalled bytes
        #: (None disables — the paper's prototype choice).  Receivers
        #: always understand compressed frames regardless of their own
        #: setting, so the option can be enabled per host.
        self.compress_threshold = compress_threshold
        self.bytes_saved_by_compression = 0
        self._m_corrupt = registry.counter(
            "transport_corrupt_frames_total",
            "Inbound frames dropped for failing their CRC seal",
            labelnames=("host",),
        ).labels(host=host.name)
        self._m_marshal_hits = registry.counter(
            "marshal_cache_hits_total",
            "Request bodies transmitted from pre-marshalled bytes",
            labelnames=("host",),
        ).labels(host=host.name)
        #: Incremented by :meth:`crash`; replies computed by a dead
        #: incarnation are suppressed when their epoch is stale.
        self._epoch = 0
        host.bind(RPC_PORT, self._on_rpc_datagram)

    @property
    def corrupt_frames_detected(self) -> int:
        return int(self._m_corrupt.value)

    @property
    def bytes_sent(self) -> int:
        return int(self._m_bytes.value)

    @property
    def messages_sent(self) -> int:
        return int(self._m_messages.value)

    # -- payload framing ---------------------------------------------------

    def _encode_payload(self, value: Any) -> bytes:
        raw = marshal(value)
        if (
            self.compress_threshold is not None
            and len(raw) > self.compress_threshold
        ):
            squeezed = zlib.compress(raw, level=6)
            if len(squeezed) + 1 < len(raw):
                self.bytes_saved_by_compression += len(raw) - len(squeezed) - 1
                return seal(_COMPRESSED + squeezed)
        return seal(_RAW + raw)

    @staticmethod
    def _decode_payload(payload: bytes) -> Any:
        # unseal() hands back a zero-copy view; slicing the marker off
        # is another view, so the frame is only copied where the
        # decoder materializes payload bytes into the result.
        payload = unseal(payload)
        marker, body = payload[:1], payload[1:]
        if marker == _COMPRESSED:
            try:
                raw = zlib.decompress(body)
            except zlib.error as exc:
                raise MarshalError(f"corrupt compressed frame: {exc}") from exc
            return unmarshal(raw)
        return unmarshal(body)

    # -- link selection --------------------------------------------------

    def usable_links(self, dst: Host) -> list[Link]:
        """Links to ``dst`` that are currently up, best bandwidth first."""
        links = [link for link in self.host.links_to(dst) if link.is_up]
        links.sort(key=lambda link: -link.spec.bandwidth_bps)
        return links

    def best_link(self, dst: Host) -> Optional[Link]:
        links = self.usable_links(dst)
        return links[0] if links else None

    # -- datagram layer ---------------------------------------------------

    def listen(self, port: int, handler: MessageHandler) -> None:
        """Receive unmarshalled objects sent to ``port`` on this host."""
        if port == RPC_PORT:
            raise ValueError(f"port {RPC_PORT} is reserved for RPC")
        self._handlers[port] = handler
        self.host.bind(port, self._make_port_dispatcher(port))

    def _make_port_dispatcher(self, port: int) -> Callable[[bytes, Address], None]:
        def dispatch(payload: bytes, source: Address) -> None:
            handler = self._handlers.get(port)
            if handler is None:
                return
            try:
                value = self._decode_payload(payload)
            except MarshalError:
                self._m_corrupt.inc()
                return  # corrupt frame: detected and dropped
            handler(value, source)

        return dispatch

    def send(
        self,
        dst: Host,
        port: int,
        value: Any,
        link: Optional[Link] = None,
        on_failed: Optional[Callable[[str], None]] = None,
        src_port: int = RPC_PORT,
        trace: Optional[tuple[str, str]] = None,
    ) -> int:
        """Marshal and transmit ``value``; returns payload size in bytes.

        Raises :class:`LinkDown` when no usable link exists right now.
        With a ``trace`` context, the wire crossing is recorded as a
        ``link.transmit`` span from now (including any wait for the
        serial line) until delivery at the peer.
        """
        chosen = link or self.best_link(dst)
        if chosen is None or not chosen.is_up:
            raise LinkDown(f"no usable link {self.host.name} -> {dst.name}")
        payload = self._encode_payload(value)
        arrival = chosen.send(
            self.host, port, payload, on_failed=on_failed, src_port=src_port
        )
        if trace is not None and self.tracer.enabled:
            self.tracer.record(
                "link.transmit",
                trace,
                start=self.sim.now,
                end=arrival,
                # "wire", not "link": the scope-level "link" attr names
                # the network *config* (summary grouping key); this one
                # names the physical hop the bytes took.
                wire=chosen.name,
                bytes=len(payload),
                src=self.host.name,
                dst=dst.name,
            )
        self._m_bytes.inc(len(payload))
        self._m_messages.inc()
        return len(payload)

    # -- request/reply (blocking RPC baseline) ----------------------------

    def register(self, service: str, handler: RequestHandler) -> None:
        """Expose ``handler`` as a callable remote service on this host."""
        self._request_handlers[service] = handler

    def call(
        self,
        dst: Host,
        service: str,
        request: Any,
        on_reply: Callable[[Any], None],
        on_error: Callable[[RpcError], None],
        timeout: float = 60.0,
        link: Optional[Link] = None,
    ) -> str:
        """Issue an RPC; exactly one of the callbacks will run.

        Returns the call id (useful for correlating in logs).
        """
        call_id = f"{self.host.name}:{self._next_call_id}"
        self._next_call_id += 1

        def expire() -> None:
            pending = self._pending_calls.pop(call_id, None)
            if pending is not None:
                on_error(RpcTimeout(f"call {call_id} to {service} timed out"))

        timer = self.sim.schedule(timeout, expire)
        self._pending_calls[call_id] = {
            "on_reply": on_reply,
            "on_error": on_error,
            "timer": timer,
        }

        envelope = {
            "kind": "request",
            "id": call_id,
            "service": service,
            "body": request,
        }

        def failed(reason: str) -> None:
            pending = self._pending_calls.pop(call_id, None)
            if pending is not None:
                pending["timer"].cancel()
                on_error(RpcError(f"call {call_id} failed: {reason}"))

        trace = (
            parse_context(request.get(TRACE_KEY))
            if isinstance(request, dict)
            else None
        )
        if isinstance(request, Premarshalled):
            self._m_marshal_hits.inc()
        try:
            self.send(dst, RPC_PORT, envelope, link=link, on_failed=failed, trace=trace)
        except LinkDown as exc:
            pending = self._pending_calls.pop(call_id, None)
            if pending is not None:
                pending["timer"].cancel()
            raise RpcError(str(exc)) from exc
        return call_id

    def call_blocking(
        self,
        dst: Host,
        service: str,
        request: Any,
        timeout: float = 60.0,
        link: Optional[Link] = None,
    ) -> Any:
        """Run the simulator until the reply arrives; return the result.

        This is the conventional-RPC baseline: the "application" makes
        no progress while the call is outstanding.  Raises
        :class:`RpcError` on failure or timeout.
        """
        outcome: dict[str, Any] = {}

        def on_reply(value: Any) -> None:
            outcome["value"] = value

        def on_error(error: RpcError) -> None:
            outcome["error"] = error

        self.call(dst, service, request, on_reply, on_error, timeout=timeout, link=link)
        self.sim.run_until(lambda: bool(outcome))
        if "error" in outcome:
            raise outcome["error"]
        if "value" not in outcome:
            raise RpcTimeout(f"simulation drained before reply from {service}")
        return outcome["value"]

    def _on_rpc_datagram(self, payload: bytes, source: Address) -> None:
        try:
            envelope = self._decode_payload(payload)
        except MarshalError:
            self._m_corrupt.inc()
            return  # corrupt frame: detected and dropped, retransmit recovers
        if not isinstance(envelope, dict):
            self._m_corrupt.inc()
            return
        kind = envelope.get("kind")
        if kind == "request":
            self._serve_request(envelope, source)
        elif kind == "reply":
            self._accept_reply(envelope)

    def crash(self) -> None:
        """Drop per-process transport state for a simulated crash.

        Cancels every pending call's timeout timer (their callbacks
        belong to the dead incarnation), forgets the calls, and bumps
        the epoch so replies already computed by handlers of the old
        incarnation are never transmitted.  Port bindings live on the
        :class:`Host` and are the crashing process's concern (see
        ``Host.take_ports``).
        """
        for pending in self._pending_calls.values():
            pending["timer"].cancel()
        self._pending_calls.clear()
        self._epoch += 1

    def handle_request(self, service: str, body: Any, source: Address) -> tuple[bool, Any]:
        """Dispatch a request to the local service table.

        Shared by every carrier that can deliver requests to this host
        (direct RPC port, SMTP relay).  Returns ``(ok, reply_body)``;
        handler exceptions are captured as error replies rather than
        crashing the host.
        """
        handler = self._request_handlers.get(service)
        if handler is None:
            return False, {"error": f"unknown service {service!r}"}
        try:
            return True, handler(body, source)
        except Exception as exc:  # surface remote faults to caller
            return False, {"error": f"{type(exc).__name__}: {exc}"}

    def _serve_request(self, envelope: dict, source: Address) -> None:
        src_host = self.host.network.hosts.get(source[0])
        if src_host is None:
            return
        body = envelope.get("body")
        trace = parse_context(body.get(TRACE_KEY)) if isinstance(body, dict) else None
        started = self.sim.now
        ok, reply_body = self.handle_request(
            envelope.get("service", ""), body, source
        )
        if isinstance(reply_body, AsyncReply):
            # The handler will answer later (e.g. once replication
            # reaches quorum); bind the transmit path and return.  The
            # epoch fence still applies at completion time, so a reply
            # completed by a dead incarnation is never sent.
            epoch = self._epoch
            call_id = envelope.get("id")
            service = envelope.get("service", "")

            def finish(completed_body: Any) -> None:
                if epoch != self._epoch:
                    return  # the incarnation that served this crashed
                delay_s = 0.0
                final = completed_body
                if isinstance(final, DelayedReply):
                    delay_s = final.delay_s
                    final = final.body
                if trace is not None and self.tracer.enabled:
                    self.tracer.record(
                        "server.execute",
                        trace,
                        start=started,
                        end=self.sim.now + delay_s,
                        service=service,
                        host=self.host.name,
                        status="ok",
                    )
                reply_envelope = {
                    "kind": "reply",
                    "id": call_id,
                    "ok": True,
                    "body": final,
                }

                def transmit_async() -> None:
                    if epoch != self._epoch:
                        return
                    try:
                        self.send(src_host, RPC_PORT, reply_envelope, trace=trace)
                    except LinkDown:
                        pass  # lost reply; the caller's timeout recovers

                if delay_s > 0:
                    self.sim.schedule(delay_s, transmit_async)
                else:
                    transmit_async()

            reply_body.bind(finish)
            return
        delay = 0.0
        if isinstance(reply_body, DelayedReply):
            delay = reply_body.delay_s
            reply_body = reply_body.body
        if trace is not None and self.tracer.enabled:
            # Handler ran synchronously at `started`; DelayedReply's
            # delay is the modelled server compute time.
            self.tracer.record(
                "server.execute",
                trace,
                start=started,
                end=started + delay,
                service=envelope.get("service", ""),
                host=self.host.name,
                status="ok" if ok else "error",
            )
        reply = {
            "kind": "reply",
            "id": envelope.get("id"),
            "ok": ok,
            "body": reply_body,
        }
        epoch = self._epoch

        def transmit() -> None:
            if epoch != self._epoch:
                return  # the incarnation that computed this reply crashed
            try:
                self.send(src_host, RPC_PORT, reply, trace=trace)
            except LinkDown:
                # The reply is lost; the caller's timeout handles it.
                pass

        if delay > 0:
            self.sim.schedule(delay, transmit)
        else:
            transmit()

    def _accept_reply(self, envelope: dict) -> None:
        call_id = envelope.get("id")
        pending = self._pending_calls.pop(call_id, None)
        if pending is None:
            return  # duplicate or expired reply
        pending["timer"].cancel()
        if envelope.get("ok"):
            pending["on_reply"](envelope.get("body"))
        else:
            body = envelope.get("body") or {}
            message = body.get("error", "remote error") if isinstance(body, dict) else str(body)
            pending["on_error"](RpcError(message))


def null_rpc_time(spec: LinkSpec, request_bytes: int, reply_bytes: int) -> float:
    """Analytic round-trip time for a request/reply on an idle link.

    Used by benchmarks to sanity-check simulated latencies.
    """
    return spec.transfer_time(request_bytes) + spec.transfer_time(reply_bytes)
