"""Network substrate: simulated links, hosts, transports, protocols.

This package replaces the paper's physical testbed (Ethernet, WaveLAN,
CSLIP dial-up lines) with a byte-accurate discrete-event model:

* :mod:`repro.net.message` — compact deterministic marshalling so every
  transfer has an honest size in bytes.
* :mod:`repro.net.link` — link specifications (bandwidth, latency, MTU,
  per-fragment header overhead) and connectivity policies (always-up,
  periodic outages, explicit traces).
* :mod:`repro.net.simnet` — hosts, interfaces, point-to-point links and
  the store-and-forward transmission model.
* :mod:`repro.net.transport` — object-level messaging and a
  request/reply (RPC) layer with timeouts.
* :mod:`repro.net.scheduler` — Rover's network scheduler: priority
  queues, interface selection, retransmission, relay fallback.
* :mod:`repro.net.http` / :mod:`repro.net.smtp` — minimal protocol
  front-ends mirroring the paper's HTTP and SMTP transports.
"""

from repro.net.link import (
    CSLIP_2_4,
    CSLIP_14_4,
    ETHERNET_10M,
    WAVELAN_2M,
    AlwaysDown,
    AlwaysUp,
    ConnectivityPolicy,
    IntervalTrace,
    LinkSpec,
    PeriodicSchedule,
    STANDARD_LINKS,
)
from repro.net.message import MarshalError, marshal, marshalled_size, unmarshal
from repro.net.scheduler import NetworkScheduler, Priority
from repro.net.simnet import Host, Link, LinkDown, Network
from repro.net.transport import RpcError, RpcTimeout, Transport

__all__ = [
    "AlwaysDown",
    "AlwaysUp",
    "ConnectivityPolicy",
    "CSLIP_14_4",
    "CSLIP_2_4",
    "ETHERNET_10M",
    "Host",
    "IntervalTrace",
    "Link",
    "LinkDown",
    "LinkSpec",
    "MarshalError",
    "Network",
    "NetworkScheduler",
    "PeriodicSchedule",
    "Priority",
    "RpcError",
    "RpcTimeout",
    "STANDARD_LINKS",
    "Transport",
    "WAVELAN_2M",
    "marshal",
    "marshalled_size",
    "unmarshal",
]
